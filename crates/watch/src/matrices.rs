//! Dense channel × block matrices.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A dense `C × B` matrix of plaintext spectrum quantities (quantized
/// milliwatt fixed-point integers).
///
/// Indexing is `(channel, block)`, matching the paper's `M(c, b)`
/// notation; storage is channel-major.
///
/// # Examples
///
/// ```
/// use pisa_watch::IntMatrix;
///
/// let mut m = IntMatrix::zeros(3, 4);
/// m.set(1, 2, 42);
/// assert_eq!(m.get(1, 2), 42);
/// assert_eq!(m.get(0, 0), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntMatrix {
    channels: usize,
    blocks: usize,
    data: Vec<i128>,
}

impl IntMatrix {
    /// A `channels × blocks` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(channels: usize, blocks: usize) -> Self {
        assert!(channels > 0 && blocks > 0, "matrix must be non-empty");
        IntMatrix {
            channels,
            blocks,
            data: vec![0; channels * blocks],
        }
    }

    /// Builds a matrix by evaluating `f(c, b)` for every entry.
    pub fn from_fn(
        channels: usize,
        blocks: usize,
        mut f: impl FnMut(usize, usize) -> i128,
    ) -> Self {
        let mut m = IntMatrix::zeros(channels, blocks);
        for c in 0..channels {
            for b in 0..blocks {
                m.set(c, b, f(c, b));
            }
        }
        m
    }

    /// Number of channels `C`.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of blocks `B`.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Entry `(c, b)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, c: usize, b: usize) -> i128 {
        self.data[self.index(c, b)]
    }

    /// Sets entry `(c, b)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, c: usize, b: usize, v: i128) {
        let i = self.index(c, b);
        self.data[i] = v;
    }

    /// Iterates `(c, b, value)` over all entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, i128)> + '_ {
        let blocks = self.blocks;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i / blocks, i % blocks, v))
    }

    /// The underlying channel-major storage.
    pub fn as_slice(&self) -> &[i128] {
        &self.data
    }

    /// Applies `f` to every entry in place.
    pub fn map_in_place(&mut self, mut f: impl FnMut(i128) -> i128) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Multiplies every entry by a scalar (the paper's ⊗ in plaintext).
    pub fn scale(&self, k: i128) -> IntMatrix {
        IntMatrix {
            channels: self.channels,
            blocks: self.blocks,
            data: self.data.iter().map(|v| v * k).collect(),
        }
    }

    /// `true` if every entry is strictly positive — the paper's grant
    /// condition on the indicator matrix **I**.
    pub fn all_positive(&self) -> bool {
        self.data.iter().all(|&v| v > 0)
    }

    /// Entries `(c, b)` that are `<= 0` — the violated budgets.
    pub fn non_positive_entries(&self) -> Vec<(usize, usize)> {
        self.iter()
            .filter(|&(_, _, v)| v <= 0)
            .map(|(c, b, _)| (c, b))
            .collect()
    }

    fn index(&self, c: usize, b: usize) -> usize {
        assert!(
            c < self.channels && b < self.blocks,
            "index ({c}, {b}) out of {}x{} matrix",
            self.channels,
            self.blocks
        );
        c * self.blocks + b
    }

    fn assert_same_shape(&self, other: &IntMatrix) {
        assert!(
            self.channels == other.channels && self.blocks == other.blocks,
            "shape mismatch: {}x{} vs {}x{}",
            self.channels,
            self.blocks,
            other.channels,
            other.blocks
        );
    }
}

impl Add<&IntMatrix> for &IntMatrix {
    type Output = IntMatrix;
    fn add(self, rhs: &IntMatrix) -> IntMatrix {
        self.assert_same_shape(rhs);
        IntMatrix {
            channels: self.channels,
            blocks: self.blocks,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub<&IntMatrix> for &IntMatrix {
    type Output = IntMatrix;
    fn sub(self, rhs: &IntMatrix) -> IntMatrix {
        self.assert_same_shape(rhs);
        IntMatrix {
            channels: self.channels,
            blocks: self.blocks,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl fmt::Display for IntMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "IntMatrix {}x{}:", self.channels, self.blocks)?;
        for c in 0..self.channels.min(8) {
            write!(f, "  c{c}:")?;
            for b in 0..self.blocks.min(12) {
                write!(f, " {:>6}", self.get(c, b))?;
            }
            writeln!(f, "{}", if self.blocks > 12 { " …" } else { "" })?;
        }
        if self.channels > 8 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut m = IntMatrix::zeros(2, 3);
        assert_eq!(m.channels(), 2);
        assert_eq!(m.blocks(), 3);
        m.set(1, 2, -7);
        assert_eq!(m.get(1, 2), -7);
        assert_eq!(m.as_slice().iter().sum::<i128>(), -7);
    }

    #[test]
    fn add_sub_scale() {
        let a = IntMatrix::from_fn(2, 2, |c, b| (c * 10 + b) as i128);
        let b = IntMatrix::from_fn(2, 2, |_, _| 1);
        assert_eq!((&a + &b).get(1, 1), 12);
        assert_eq!((&a - &b).get(0, 0), -1);
        assert_eq!(a.scale(3).get(1, 0), 30);
    }

    #[test]
    fn positivity_checks() {
        let pos = IntMatrix::from_fn(2, 2, |_, _| 5);
        assert!(pos.all_positive());
        assert!(pos.non_positive_entries().is_empty());
        let mut mixed = pos.clone();
        mixed.set(0, 1, 0);
        mixed.set(1, 0, -3);
        assert!(!mixed.all_positive());
        assert_eq!(mixed.non_positive_entries(), vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn iter_covers_all() {
        let m = IntMatrix::from_fn(3, 4, |c, b| (c * 4 + b) as i128);
        let collected: Vec<_> = m.iter().collect();
        assert_eq!(collected.len(), 12);
        assert_eq!(collected[5], (1, 1, 5));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let a = IntMatrix::zeros(2, 2);
        let b = IntMatrix::zeros(2, 3);
        let _ = &a + &b;
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_panics() {
        let m = IntMatrix::zeros(2, 2);
        let _ = m.get(2, 0);
    }

    #[test]
    fn display_truncates() {
        let m = IntMatrix::zeros(20, 30);
        let s = m.to_string();
        assert!(s.contains("IntMatrix 20x30"));
        assert!(s.contains('…'));
    }
}
