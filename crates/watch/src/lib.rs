//! Plaintext WATCH: the dynamic spectrum-sharing baseline PISA secures.
//!
//! WATCH (Zhang & Knightly, MobiHoc'15) coordinates secondary WiFi
//! transmissions in *active* TV channels: instead of excluding secondary
//! users from every channel with a broadcaster, the Spectrum Database
//! Controller (SDC) tracks which TV receivers are actually watching
//! which channel and bounds secondary EIRP only where it would hurt a
//! real receiver.
//!
//! This crate implements WATCH's spectrum computation in the clear —
//! §IV-A of the PISA paper:
//!
//! 1. **Initialization** — precompute the public matrix **E** of maximum
//!    SU EIRP per (channel, block) from TV transmitter data.
//! 2. **Update from PU** (eqs. 3–4) — aggregate PU inputs into **T′**
//!    and build the interference budget matrix **N**.
//! 3. **Transmission request from SU** (eqs. 5–7) — scale the SU's
//!    interference profile **F**, subtract from **N**, and grant iff
//!    every entry of the indicator **I** stays positive.
//!
//! PISA (in `pisa-core`) runs the same arithmetic homomorphically; the
//! integration test `watch_equivalence` pins the two together.
//!
//! # Examples
//!
//! ```
//! use pisa_watch::{WatchConfig, WatchSdc, PuInput, SuRequest};
//! use pisa_radio::{grid::BlockId, tv::Channel};
//!
//! let cfg = WatchConfig::small_test(); // 4 channels × 25 blocks
//! let mut sdc = WatchSdc::new(cfg.clone());
//! sdc.pu_update(0, PuInput::tuned(&cfg, BlockId(12), Channel(1)));
//! let request = SuRequest::full_power(&cfg, BlockId(13), &[Channel(1)]);
//! let decision = sdc.process_request(&request);
//! assert!(decision.is_denied()); // SU right next to an active PU
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod config;
mod decision;
mod init;
mod matrices;
mod pu;
mod sdc;
mod su;

pub use config::WatchConfig;
pub use decision::Decision;
pub use init::compute_e_matrix;
pub use matrices::IntMatrix;
pub use pu::PuInput;
pub use sdc::WatchSdc;
pub use su::SuRequest;
