//! Physical-layer analysis: does the protection model actually protect?
//!
//! WATCH's grant rule checks each SU *individually* against the budget
//! `N`, and absorbs the multiplicity of simultaneous SUs into the
//! `Δ_redn` margin of eq. (1)/(6) ("the situation of multiple SUs is
//! handled by the value Δ_redn"). This module computes the *actual*
//! signal-to-interference ratio a TV receiver experiences when a set of
//! granted SUs transmits simultaneously, so that claim can be tested
//! instead of assumed.

use crate::{SuRequest, WatchConfig};
use pisa_radio::tv::Channel;
use pisa_radio::units::Db;
use pisa_radio::BlockId;

/// A transmitting secondary: where it is and what it radiates per
/// channel (a granted [`SuRequest`] put on the air).
#[derive(Debug, Clone)]
pub struct ActiveSecondary {
    /// The SU's block.
    pub block: BlockId,
    /// Radiated power in mW per channel (0 = silent on that channel).
    pub eirp_mw: Vec<f64>,
}

impl ActiveSecondary {
    /// An active secondary transmitting exactly its granted request.
    pub fn from_request(request: &SuRequest) -> Self {
        ActiveSecondary {
            block: request.block(),
            eirp_mw: request.eirp_mw().to_vec(),
        }
    }
}

/// Aggregate secondary interference (linear mW) deposited at `pu_block`
/// on `channel` by a set of simultaneously active SUs.
pub fn aggregate_interference_mw(
    cfg: &WatchConfig,
    pu_block: BlockId,
    channel: Channel,
    active: &[ActiveSecondary],
) -> f64 {
    active
        .iter()
        .map(|su| {
            let power = su.eirp_mw.get(channel.0).copied().unwrap_or(0.0);
            if power == 0.0 {
                0.0
            } else {
                power * cfg.path_gain(su.block, pu_block, channel)
            }
        })
        .sum()
}

/// The signal-to-interference ratio at a PU watching `channel` in
/// `pu_block` while `active` SUs transmit. `None` when there is no
/// interference at all (infinite SIR).
pub fn sir_at_pu(
    cfg: &WatchConfig,
    pu_block: BlockId,
    channel: Channel,
    active: &[ActiveSecondary],
) -> Option<Db> {
    let interference = aggregate_interference_mw(cfg, pu_block, channel, active);
    if interference <= 0.0 {
        return None;
    }
    let signal = cfg.pu_signal_mw(pu_block, channel);
    Some(Db(10.0 * (signal / interference).log10()))
}

/// How many simultaneously transmitting SUs the `Δ_redn` margin covers
/// (to the nearest integer): each individually granted SU deposits at
/// most `budget / X` where `X = Δ_SINR + Δ_redn`, so `Δ_redn` dB of
/// margin absorbs ≈`10^(Δ_redn/10)` worst-case interferers (3 dB ≈ 2).
pub fn covered_multiplicity(cfg: &WatchConfig) -> usize {
    Db(cfg.params().redn_db).as_ratio().round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PuInput, WatchSdc};

    #[test]
    fn single_granted_su_leaves_full_margin() {
        // One granted SU's interference keeps the PU's SIR above even
        // Δ_SINR + Δ_redn (the individual check uses the full X).
        let cfg = WatchConfig::small_test();
        let mut sdc = WatchSdc::new(cfg.clone());
        sdc.pu_update(0, PuInput::tuned(&cfg, BlockId(12), Channel(0)));

        let request = SuRequest::with_power_dbm(&cfg, BlockId(20), &[Channel(0)], -25.0);
        assert!(sdc.process_request(&request).is_granted());

        let active = [ActiveSecondary::from_request(&request)];
        let sir = sir_at_pu(&cfg, BlockId(12), Channel(0), &active).expect("interference exists");
        let required = cfg.params().tv_sinr_db + cfg.params().redn_db;
        assert!(
            sir.0 >= required,
            "granted SU leaves SIR {sir} < required {required} dB"
        );
    }

    #[test]
    fn redn_margin_covers_two_simultaneous_sus() {
        // Δ_redn = 3 dB covers a doubling of interference: two SUs that
        // are *each* granted may transmit together and the PU still
        // meets its base Δ_SINR requirement.
        let cfg = WatchConfig::small_test();
        assert!(covered_multiplicity(&cfg) >= 2);
        let mut sdc = WatchSdc::new(cfg.clone());
        sdc.pu_update(0, PuInput::tuned(&cfg, BlockId(12), Channel(0)));

        let r1 = SuRequest::with_power_dbm(&cfg, BlockId(20), &[Channel(0)], -25.0);
        let r2 = SuRequest::with_power_dbm(&cfg, BlockId(4), &[Channel(0)], -25.0);
        assert!(sdc.process_request(&r1).is_granted());
        assert!(sdc.process_request(&r2).is_granted());

        let active = [
            ActiveSecondary::from_request(&r1),
            ActiveSecondary::from_request(&r2),
        ];
        let sir = sir_at_pu(&cfg, BlockId(12), Channel(0), &active).expect("interference exists");
        assert!(
            sir.0 >= cfg.params().tv_sinr_db,
            "aggregate of two granted SUs broke the PU: SIR {sir}"
        );
    }

    #[test]
    fn denied_su_would_have_broken_the_pu() {
        // The deny decision is physically meaningful: had the denied SU
        // transmitted anyway, the PU's SIR would violate even the base
        // requirement — denial is not over-conservatism here.
        let cfg = WatchConfig::small_test();
        let mut sdc = WatchSdc::new(cfg.clone());
        sdc.pu_update(0, PuInput::tuned(&cfg, BlockId(12), Channel(0)));

        let rogue = SuRequest::full_power(&cfg, BlockId(13), &[Channel(0)]);
        assert!(sdc.process_request(&rogue).is_denied());

        let active = [ActiveSecondary::from_request(&rogue)];
        let sir = sir_at_pu(&cfg, BlockId(12), Channel(0), &active).expect("interference exists");
        assert!(
            sir.0 < cfg.params().tv_sinr_db,
            "denied SU was actually harmless (SIR {sir}) — threshold miscalibrated"
        );
    }

    #[test]
    fn silence_means_infinite_sir() {
        let cfg = WatchConfig::small_test();
        let active = [ActiveSecondary {
            block: BlockId(0),
            eirp_mw: vec![0.0; 4],
        }];
        assert!(sir_at_pu(&cfg, BlockId(12), Channel(0), &active).is_none());
        assert_eq!(
            aggregate_interference_mw(&cfg, BlockId(12), Channel(0), &active),
            0.0
        );
    }

    #[test]
    fn interference_adds_linearly() {
        let cfg = WatchConfig::small_test();
        let su = |b: usize| ActiveSecondary {
            block: BlockId(b),
            eirp_mw: vec![1.0, 0.0, 0.0, 0.0],
        };
        let one = aggregate_interference_mw(&cfg, BlockId(12), Channel(0), &[su(3)]);
        let both = aggregate_interference_mw(&cfg, BlockId(12), Channel(0), &[su(3), su(3)]);
        assert!((both - 2.0 * one).abs() < 1e-18);
    }
}
