//! Shared system configuration for WATCH (and reused by PISA).

use pisa_radio::grid::Point;
use pisa_radio::pathloss::{IrregularTerrain, LinkGeometry};
use pisa_radio::protection::{protection_distance, ProtectionParams};
use pisa_radio::terrain::Terrain;
use pisa_radio::tv::{Channel, TvTransmitter};
use pisa_radio::{Quantizer, ServiceArea};

/// Full WATCH system configuration: geometry, channels, regulatory
/// parameters, propagation model and quantization.
///
/// The same configuration object drives the plaintext baseline and the
/// encrypted PISA protocol, guaranteeing that both compute over
/// identical inputs.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    area: ServiceArea,
    channels: usize,
    params: ProtectionParams,
    quantizer: Quantizer,
    model: IrregularTerrain,
    transmitters: Vec<TvTransmitter>,
    /// Pre-computed protection distance `d^c` per channel (eq. 1).
    dc_m: Vec<f64>,
}

/// Fallback mean TV signal for a PU tuned to a channel with no modeled
/// broadcaster: 20 dB above the protection threshold (a healthy indoor
/// signal). Keeps small test scenarios meaningful without modeling
/// transmitters.
const FALLBACK_SIGNAL_MARGIN_DB: f64 = 20.0;

/// Cap on the protection-distance search (beyond ~50 km the entire area
/// of any realistic SDC is covered anyway).
const MAX_PROTECTION_DISTANCE_M: f64 = 50_000.0;

impl WatchConfig {
    /// Builds a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(
        area: ServiceArea,
        channels: usize,
        params: ProtectionParams,
        quantizer: Quantizer,
        terrain: Terrain,
        transmitters: Vec<TvTransmitter>,
    ) -> Self {
        assert!(channels > 0, "need at least one channel");
        let model = IrregularTerrain::new(terrain);
        let dc_m = (0..channels)
            .map(|c| protection_distance(&model, &params, Channel(c), MAX_PROTECTION_DISTANCE_M))
            .collect();
        WatchConfig {
            area,
            channels,
            params,
            quantizer,
            model,
            transmitters,
            dc_m,
        }
    }

    /// The paper's Table I configuration: 100 channels, 600 blocks,
    /// 60-bit integers, ATSC protection defaults, gentle terrain and two
    /// full-power TV stations outside the service area.
    pub fn paper() -> Self {
        let area = ServiceArea::paper();
        let transmitters = vec![
            TvTransmitter::full_power(
                Point {
                    x: -20_000.0,
                    y: 5_000.0,
                },
                Channel(3),
            ),
            TvTransmitter::full_power(
                Point {
                    x: 25_000.0,
                    y: -8_000.0,
                },
                Channel(7),
            ),
        ];
        WatchConfig::new(
            area,
            100,
            ProtectionParams::atsc_defaults(),
            Quantizer::paper(),
            Terrain::new(2017, 80.0),
            transmitters,
        )
    }

    /// A tiny deterministic configuration for unit tests: 4 channels,
    /// 5 × 5 blocks, flat terrain, no broadcasters.
    pub fn small_test() -> Self {
        WatchConfig::new(
            ServiceArea::new(5, 5, 10.0),
            4,
            ProtectionParams::atsc_defaults(),
            Quantizer::paper(),
            Terrain::flat(),
            Vec::new(),
        )
    }

    /// The service area grid.
    pub fn area(&self) -> &ServiceArea {
        &self.area
    }

    /// Number of channels `C`.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of blocks `B`.
    pub fn blocks(&self) -> usize {
        self.area.num_blocks()
    }

    /// Regulatory protection parameters.
    pub fn params(&self) -> &ProtectionParams {
        &self.params
    }

    /// Fixed-point quantizer (Table I's 60-bit integer representation).
    pub fn quantizer(&self) -> &Quantizer {
        &self.quantizer
    }

    /// The propagation model.
    pub fn model(&self) -> &IrregularTerrain {
        &self.model
    }

    /// Modeled TV broadcast transmitters (public data).
    pub fn transmitters(&self) -> &[TvTransmitter] {
        &self.transmitters
    }

    /// Protection distance `d^c` for a channel, meters (eq. 1).
    ///
    /// # Panics
    ///
    /// Panics if the channel is out of range.
    pub fn protection_distance_m(&self, c: Channel) -> f64 {
        self.dc_m[c.0]
    }

    /// Link geometry for a secondary transmission on channel `c`.
    pub fn su_geometry(&self, c: Channel) -> LinkGeometry {
        LinkGeometry::secondary_default(c.center_freq_mhz())
    }

    /// Mean TV signal strength `S^PU` (linear mW) at a block for a PU
    /// tuned to `c`: strongest modeled broadcaster on that channel, or a
    /// healthy fallback signal when no broadcaster is modeled.
    pub fn pu_signal_mw(&self, block: pisa_radio::BlockId, c: Channel) -> f64 {
        let rx = self.area.block_center(block);
        let best = self
            .transmitters
            .iter()
            .filter(|t| t.channel == c)
            .map(|t| t.signal_at(&self.model, rx).0)
            .fold(f64::NEG_INFINITY, f64::max);
        let dbm = if best.is_finite() {
            best
        } else {
            self.params.pu_min_signal_dbm + FALLBACK_SIGNAL_MARGIN_DB
        };
        pisa_radio::Dbm(dbm).to_milliwatts().0
    }

    /// Linear path gain `h(d)` between two blocks on channel `c` — the
    /// `h(d^c_{i,j})` of equations (2) and (5).
    pub fn path_gain(&self, from: pisa_radio::BlockId, to: pisa_radio::BlockId, c: Channel) -> f64 {
        let a = self.area.block_center(from);
        let b = self.area.block_center(to);
        self.model.path_gain_between(a, b, &self.su_geometry(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pisa_radio::BlockId;

    #[test]
    fn paper_config_dimensions() {
        let cfg = WatchConfig::paper();
        assert_eq!(cfg.channels(), 100);
        assert_eq!(cfg.blocks(), 600);
        assert_eq!(cfg.quantizer().total_bits(), 60);
    }

    #[test]
    fn protection_distances_precomputed() {
        let cfg = WatchConfig::small_test();
        for c in 0..cfg.channels() {
            let d = cfg.protection_distance_m(Channel(c));
            assert!(d > 0.0);
        }
    }

    #[test]
    fn pu_signal_uses_fallback_without_transmitters() {
        let cfg = WatchConfig::small_test();
        let mw = cfg.pu_signal_mw(BlockId(0), Channel(0));
        let expected = pisa_radio::Dbm(-64.0).to_milliwatts().0;
        assert!((mw - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn pu_signal_uses_transmitter_when_present() {
        let cfg = WatchConfig::paper();
        // Channel 3 has a broadcaster; channel 4 does not.
        let with_tx = cfg.pu_signal_mw(BlockId(0), Channel(3));
        let fallback = cfg.pu_signal_mw(BlockId(0), Channel(4));
        assert_ne!(with_tx, fallback);
    }

    #[test]
    fn path_gain_decreases_with_distance() {
        let cfg = WatchConfig::small_test();
        let near = cfg.path_gain(BlockId(0), BlockId(1), Channel(0));
        let far = cfg.path_gain(BlockId(0), BlockId(24), Channel(0));
        assert!(near > far);
        assert!(far > 0.0);
    }
}
