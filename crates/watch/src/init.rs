//! WATCH initialization: the public matrix **E** of maximum SU EIRP
//! (§IV-A1).
//!
//! The SDC precomputes, for every (channel, block), the maximum EIRP a
//! secondary transmitter in that block may radiate without degrading TV
//! reception at the *service contour* of any broadcaster on that
//! channel — the TVWS-style protection that applies even before any
//! actual receiver registers. Blocks on channels with no broadcaster get
//! the regulatory cap `S^SU_max`.

use crate::{IntMatrix, WatchConfig};
use pisa_radio::pathloss::PathLossModel;
use pisa_radio::tv::Channel;

/// Computes **E** = `{E_S(c, b)}` in quantized milliwatts.
///
/// Every entry is clamped to at least 1 quantum so the interference
/// indicator `I = N − R` can never be exactly zero merely because a
/// budget quantized to nothing (see DESIGN.md).
pub fn compute_e_matrix(cfg: &WatchConfig) -> IntMatrix {
    let q = cfg.quantizer();
    let su_max_mw = cfg.params().su_max_eirp_mw();
    IntMatrix::from_fn(cfg.channels(), cfg.blocks(), |c, b| {
        let channel = Channel(c);
        let block = pisa_radio::BlockId(b);
        let block_center = cfg.area().block_center(block);
        let mut allowed_mw = su_max_mw;
        for tx in cfg.transmitters().iter().filter(|t| t.channel == channel) {
            // Interference budget at the nearest point of the service
            // contour: the weakest protected signal divided by the SINR
            // requirement.
            let d_to_tower = block_center.distance_m(&tx.location);
            let d_to_contour = (d_to_tower - tx.service_radius_m).abs().max(10.0);
            let gain = cfg
                .model()
                .path_gain(d_to_contour, &cfg.su_geometry(channel));
            let budget_mw = cfg.params().pu_min_signal_mw() / cfg.params().x_linear();
            allowed_mw = allowed_mw.min(budget_mw / gain);
        }
        q.quantize_saturating(allowed_mw).max(1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pisa_radio::grid::Point;
    use pisa_radio::protection::ProtectionParams;
    use pisa_radio::terrain::Terrain;
    use pisa_radio::tv::TvTransmitter;
    use pisa_radio::{Quantizer, ServiceArea};

    #[test]
    fn no_transmitters_means_full_power_everywhere() {
        let cfg = WatchConfig::small_test();
        let e = compute_e_matrix(&cfg);
        let expected = cfg
            .quantizer()
            .quantize_saturating(cfg.params().su_max_eirp_mw());
        for (_, _, v) in e.iter() {
            assert_eq!(v, expected);
        }
    }

    #[test]
    fn nearby_transmitter_reduces_budget() {
        // Put a broadcaster's contour right at the service area.
        let tx = TvTransmitter {
            location: Point { x: -100.0, y: 25.0 },
            eirp_dbm: 90.0,
            antenna_height_m: 200.0,
            channel: Channel(1),
            service_radius_m: 50.0,
        };
        let cfg = WatchConfig::new(
            ServiceArea::new(5, 5, 10.0),
            4,
            ProtectionParams::atsc_defaults(),
            Quantizer::paper(),
            Terrain::flat(),
            vec![tx],
        );
        let e = compute_e_matrix(&cfg);
        let cap = cfg
            .quantizer()
            .quantize_saturating(cfg.params().su_max_eirp_mw());
        // Channel 1 near the contour is constrained below the cap…
        assert!(e.get(1, 0) < cap, "E(1,0) = {}", e.get(1, 0));
        // …while a channel without a broadcaster keeps the cap.
        assert_eq!(e.get(0, 0), cap);
    }

    #[test]
    fn entries_strictly_positive() {
        let cfg = WatchConfig::paper();
        let e = compute_e_matrix(&cfg);
        assert!(e.iter().all(|(_, _, v)| v >= 1));
    }

    #[test]
    fn dimensions_match_config() {
        let cfg = WatchConfig::small_test();
        let e = compute_e_matrix(&cfg);
        assert_eq!(e.channels(), cfg.channels());
        assert_eq!(e.blocks(), cfg.blocks());
    }
}
