//! The SDC's grant/deny decision.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Outcome of a transmission request (§IV-A3).
///
/// In plaintext WATCH the SDC sees this directly; in PISA only the SU
/// learns it, by whether the license signature verifies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// Every interference-budget entry stays strictly positive.
    Granted,
    /// At least one budget is exhausted; lists the violated
    /// `(channel, block)` pairs.
    Denied {
        /// Budget entries driven to zero or below.
        violations: Vec<(usize, usize)>,
    },
}

impl Decision {
    /// `true` for [`Decision::Granted`].
    pub fn is_granted(&self) -> bool {
        matches!(self, Decision::Granted)
    }

    /// `true` for [`Decision::Denied`].
    pub fn is_denied(&self) -> bool {
        !self.is_granted()
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Granted => f.write_str("granted"),
            Decision::Denied { violations } => {
                write!(f, "denied ({} violated budgets)", violations.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        assert!(Decision::Granted.is_granted());
        assert!(!Decision::Granted.is_denied());
        let d = Decision::Denied {
            violations: vec![(0, 1)],
        };
        assert!(d.is_denied());
    }

    #[test]
    fn display() {
        assert_eq!(Decision::Granted.to_string(), "granted");
        let d = Decision::Denied {
            violations: vec![(0, 1), (2, 3)],
        };
        assert_eq!(d.to_string(), "denied (2 violated budgets)");
    }
}
