//! Property-based tests for the plaintext WATCH baseline.

use pisa_radio::tv::Channel;
use pisa_radio::BlockId;
use pisa_watch::{PuInput, SuRequest, WatchConfig, WatchSdc};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Shared config: building one computes protection distances once.
fn cfg() -> &'static WatchConfig {
    static CFG: OnceLock<WatchConfig> = OnceLock::new();
    CFG.get_or_init(WatchConfig::small_test)
}

fn block() -> impl Strategy<Value = BlockId> {
    (0usize..25).prop_map(BlockId)
}

fn channel() -> impl Strategy<Value = Channel> {
    (0usize..4).prop_map(Channel)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn more_power_never_helps(
        pu_block in block(),
        su_block in block(),
        ch in channel(),
        low_dbm in -40.0f64..0.0,
        extra_db in 1.0f64..40.0,
    ) {
        // Monotonicity: if a louder request is granted, the quieter one
        // must be too (the budget check is monotone in EIRP).
        let cfg = cfg();
        let mut sdc = WatchSdc::new(cfg.clone());
        sdc.pu_update(0, PuInput::tuned(cfg, pu_block, ch));
        let quiet = SuRequest::with_power_dbm(cfg, su_block, &[ch], low_dbm);
        let loud = SuRequest::with_power_dbm(cfg, su_block, &[ch], low_dbm + extra_db);
        if sdc.process_request(&loud).is_granted() {
            prop_assert!(sdc.process_request(&quiet).is_granted());
        }
    }

    #[test]
    fn update_replay_reaches_same_budget(
        updates in proptest::collection::vec(
            (0u64..4, block(), proptest::option::of(channel())),
            1..12,
        ),
    ) {
        // Applying a random update sequence incrementally equals
        // rebuilding from only each PU's final state.
        let cfg = cfg();
        let mut incremental = WatchSdc::new(cfg.clone());
        let mut finals = std::collections::HashMap::new();
        for (id, b, ch) in &updates {
            let input = match ch {
                Some(c) => PuInput::tuned(cfg, *b, *c),
                None => PuInput::off(*b),
            };
            incremental.pu_update(*id, input.clone());
            finals.insert(*id, input);
        }
        let mut fresh = WatchSdc::new(cfg.clone());
        for (id, input) in finals {
            fresh.pu_update(id, input);
        }
        prop_assert_eq!(incremental.n_matrix(), fresh.n_matrix());
    }

    #[test]
    fn interference_profile_peaks_at_home_block(
        su_block in block(),
        ch in channel(),
        power_dbm in -30.0f64..30.0,
    ) {
        let cfg = cfg();
        let request = SuRequest::with_power_dbm(cfg, su_block, &[ch], power_dbm);
        let f = request.f_matrix(cfg);
        let home = f.get(ch.0, su_block.0);
        prop_assert!(home > 0);
        for (c, b, v) in f.iter() {
            prop_assert!(v <= home, "F({c},{b}) = {v} exceeds home {home}");
            prop_assert!(v >= 0);
        }
    }

    #[test]
    fn empty_system_grants_any_request(
        su_block in block(),
        ch in channel(),
        power_dbm in -40.0f64..36.0,
    ) {
        let cfg = cfg();
        let sdc = WatchSdc::new(cfg.clone());
        let request = SuRequest::with_power_dbm(cfg, su_block, &[ch], power_dbm);
        prop_assert!(sdc.process_request(&request).is_granted());
    }

    #[test]
    fn decision_matches_indicator_positivity(
        pu_block in block(),
        su_block in block(),
        pu_ch in channel(),
        su_ch in channel(),
        power_dbm in -40.0f64..36.0,
    ) {
        let cfg = cfg();
        let mut sdc = WatchSdc::new(cfg.clone());
        sdc.pu_update(0, PuInput::tuned(cfg, pu_block, pu_ch));
        let request = SuRequest::with_power_dbm(cfg, su_block, &[su_ch], power_dbm);
        let f = request.f_matrix(cfg);
        prop_assert_eq!(
            sdc.decide(&f).is_granted(),
            sdc.indicator(&f).all_positive()
        );
    }

    #[test]
    fn off_channel_requests_unaffected_by_pu(
        pu_block in block(),
        su_block in block(),
        power_dbm in -40.0f64..36.0,
    ) {
        // A PU on channel 0 never affects a request on channel 3.
        let cfg = cfg();
        let empty = WatchSdc::new(cfg.clone());
        let mut with_pu = WatchSdc::new(cfg.clone());
        with_pu.pu_update(0, PuInput::tuned(cfg, pu_block, Channel(0)));
        let request = SuRequest::with_power_dbm(cfg, su_block, &[Channel(3)], power_dbm);
        prop_assert_eq!(
            empty.process_request(&request).is_granted(),
            with_pu.process_request(&request).is_granted()
        );
    }

    #[test]
    fn switch_off_restores_pristine_state(
        moves in proptest::collection::vec((block(), channel()), 1..6),
    ) {
        // A PU that churns through any sequence of channels and then
        // turns off leaves no trace in the budget matrix.
        let cfg = cfg();
        let mut sdc = WatchSdc::new(cfg.clone());
        let pristine = sdc.n_matrix().clone();
        let mut last_block = BlockId(0);
        for (b, c) in moves {
            sdc.pu_update(0, PuInput::tuned(cfg, b, c));
            last_block = b;
        }
        sdc.pu_update(0, PuInput::off(last_block));
        prop_assert_eq!(sdc.n_matrix(), &pristine);
    }
}
