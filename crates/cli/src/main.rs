//! `pisa` — command-line interface to the PISA reproduction.
//!
//! ```text
//! pisa demo                     run the quickstart protocol flow
//! pisa keygen [--bits N]        generate a Paillier key pair
//! pisa simulate [--hours H] [--pus N] [--sus N] [--seed S]
//!                               metro-area churn simulation
//! pisa storm [--sus N] [--drop P] [--dup P] [--reorder P] [--corrupt P]
//!            [--seed S] [--retries N] [--timeout-ms T]
//!                               concurrent sessions over a faulty network
//! pisa attack                   curious-SDC inference demo (WATCH vs PISA)
//! pisa info                     print the paper's Table I configuration
//! ```

#![forbid(unsafe_code)]

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => commands::run(cmd),
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprintln!("{}", args::USAGE);
            ExitCode::FAILURE
        }
    }
}
