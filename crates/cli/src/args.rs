//! Hand-rolled argument parsing (the CLI has four flags; a parser
//! dependency would outweigh it).

/// Usage text printed on parse errors and `--help`.
pub const USAGE: &str = "\
usage: pisa <command> [options]

commands:
  demo                         run the quickstart protocol flow
  keygen [--bits N]            generate a Paillier key pair (default 1024)
  simulate [--hours H] [--pus N] [--sus N] [--seed S]
                               metro-area churn simulation
  attack                       curious-SDC inference demo (WATCH vs PISA)
  info                         print the paper's Table I configuration";

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Quickstart flow.
    Demo,
    /// Key generation with modulus size.
    Keygen {
        /// Paillier modulus bits.
        bits: usize,
    },
    /// Churn simulation.
    Simulate {
        /// Simulated hours.
        hours: usize,
        /// Number of PUs.
        pus: usize,
        /// Number of SUs.
        sus: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Inference-attack demo.
    Attack,
    /// Table I printout.
    Info,
}

/// Parses `argv` (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let mut it = argv.iter();
    let cmd = it.next().ok_or("missing command")?;
    match cmd.as_str() {
        "demo" => reject_extras(it).map(|()| Command::Demo),
        "attack" => reject_extras(it).map(|()| Command::Attack),
        "info" => reject_extras(it).map(|()| Command::Info),
        "keygen" => {
            let mut bits = 1024usize;
            parse_flags(it, |flag, value| match flag {
                "--bits" => {
                    bits = parse_num(flag, value)?;
                    if bits < 64 || bits % 2 != 0 {
                        return Err(format!("--bits must be an even number >= 64, got {bits}"));
                    }
                    Ok(())
                }
                other => Err(format!("unknown flag {other}")),
            })?;
            Ok(Command::Keygen { bits })
        }
        "simulate" => {
            let (mut hours, mut pus, mut sus, mut seed) = (4usize, 8usize, 4usize, 2017u64);
            parse_flags(it, |flag, value| match flag {
                "--hours" => {
                    hours = parse_num(flag, value)?;
                    Ok(())
                }
                "--pus" => {
                    pus = parse_num(flag, value)?;
                    Ok(())
                }
                "--sus" => {
                    sus = parse_num(flag, value)?;
                    Ok(())
                }
                "--seed" => {
                    seed = parse_num(flag, value)?;
                    Ok(())
                }
                other => Err(format!("unknown flag {other}")),
            })?;
            if hours == 0 || pus == 0 || sus == 0 {
                return Err("--hours, --pus and --sus must be positive".into());
            }
            Ok(Command::Simulate {
                hours,
                pus,
                sus,
                seed,
            })
        }
        "--help" | "-h" | "help" => Err("help requested".into()),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn reject_extras<'a>(mut it: impl Iterator<Item = &'a String>) -> Result<(), String> {
    match it.next() {
        None => Ok(()),
        Some(extra) => Err(format!("unexpected argument {extra:?}")),
    }
}

fn parse_flags<'a>(
    mut it: impl Iterator<Item = &'a String>,
    mut handle: impl FnMut(&str, &str) -> Result<(), String>,
) -> Result<(), String> {
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        handle(flag, value)?;
    }
    Ok(())
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag} expects a number, got {value:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn simple_commands() {
        assert_eq!(parse(&argv("demo")).unwrap(), Command::Demo);
        assert_eq!(parse(&argv("attack")).unwrap(), Command::Attack);
        assert_eq!(parse(&argv("info")).unwrap(), Command::Info);
    }

    #[test]
    fn keygen_defaults_and_flags() {
        assert_eq!(parse(&argv("keygen")).unwrap(), Command::Keygen { bits: 1024 });
        assert_eq!(
            parse(&argv("keygen --bits 512")).unwrap(),
            Command::Keygen { bits: 512 }
        );
        assert!(parse(&argv("keygen --bits 63")).is_err());
        assert!(parse(&argv("keygen --bits 65")).is_err());
        assert!(parse(&argv("keygen --bits")).is_err());
        assert!(parse(&argv("keygen --what 1")).is_err());
    }

    #[test]
    fn simulate_flags() {
        assert_eq!(
            parse(&argv("simulate")).unwrap(),
            Command::Simulate {
                hours: 4,
                pus: 8,
                sus: 4,
                seed: 2017
            }
        );
        assert_eq!(
            parse(&argv("simulate --hours 2 --pus 3 --sus 5 --seed 7")).unwrap(),
            Command::Simulate {
                hours: 2,
                pus: 3,
                sus: 5,
                seed: 7
            }
        );
        assert!(parse(&argv("simulate --hours 0")).is_err());
        assert!(parse(&argv("simulate --hours x")).is_err());
    }

    #[test]
    fn errors() {
        assert!(parse(&[]).is_err());
        assert!(parse(&argv("bogus")).is_err());
        assert!(parse(&argv("demo extra")).is_err());
        assert!(parse(&argv("--help")).is_err());
    }
}
