//! Hand-rolled argument parsing (the CLI has four flags; a parser
//! dependency would outweigh it).

/// Usage text printed on parse errors and `--help`.
pub const USAGE: &str = "\
usage: pisa <command> [options]

commands:
  demo                         run the quickstart protocol flow
  keygen [--bits N]            generate a Paillier key pair (default 1024)
  simulate [--hours H] [--pus N] [--sus N] [--seed S]
                               metro-area churn simulation
  storm [--sus N] [--drop P] [--dup P] [--reorder P] [--corrupt P]
        [--seed S] [--retries N] [--timeout-ms T]
        [--metrics-out FILE] [--trace-out FILE]
                               concurrent sessions over a faulty network;
                               --metrics-out writes a per-phase JSON report,
                               --trace-out a chrome://tracing file
  sim [--sus N] [--drop P] [--dup P] [--reorder P] [--corrupt P]
      [--seed S] [--retries N] [--timeout-ms T] [--mode real|modeled]
      [--sweep] [--metrics-out FILE]
                               deterministic virtual-time storm simulator;
                               --mode modeled (default) scales to 100k SUs,
                               --mode real drives the actual crypto engines,
                               --sweep runs a multi-seed fault-rate sweep
  serve-sdc [--listen ADDR] [--stp ADDR] [--sessions N] [--seed S]
            [--drop P] [--dup P] [--reorder P] [--corrupt P]
            [--retries N] [--timeout-ms T]
            [--state-dir DIR] [--checkpoint-every N] [--resume]
                               run the SDC as a TCP service (default
                               listen 127.0.0.1:7001, STP at 127.0.0.1:7002);
                               --state-dir checkpoints matrix + session state
                               atomically every N handled frames, --resume
                               reloads the checkpoint and continues mid-protocol
  serve-stp [--listen ADDR] [--sessions N] [--seed S]
            [--drop P] [--dup P] [--reorder P] [--corrupt P]
            [--retries N] [--timeout-ms T]
            [--state-dir DIR] [--checkpoint-every N] [--resume]
                               run the STP as a TCP service (default
                               listen 127.0.0.1:7002); durability flags as
                               for serve-sdc (key directory only — sk_G is
                               never written to disk)
  su [--sdc ADDR] [--sessions N] [--seed S]
     [--drop P] [--dup P] [--reorder P] [--corrupt P]
     [--retries N] [--timeout-ms T] [--halt] [--verify]
     [--metrics-out FILE]
                               drive an SU session storm against a live
                               serve-sdc; --halt drains the servers after,
                               --verify replays the storm on the in-memory
                               engine and compares every decision
  trace (--record FILE | --replay FILE) [--sessions N] [--seed S]
                               golden-trace regression gate: --record runs a
                               deterministic storm and writes its full message
                               trace; --replay re-runs the trace's storm and
                               byte-compares every frame (exit 1 on divergence)
  bench [--bits N] [--iters N] [--metrics] [--metrics-out FILE]
        [--pool N] [--threads N]
                               per-phase protocol timing (paper Tables 2-3);
                               --pool precomputes N randomizer factors per
                               party offline, --threads fans phases out
  attack                       curious-SDC inference demo (WATCH vs PISA)
  info                         print the paper's Table I configuration

all three networked roles must agree on --sessions and --seed: each
process derives the whole system state (keys, PU occupancy, SU
registrations) deterministically from that pair.";

/// Flags shared by the three networked roles (`serve-sdc`,
/// `serve-stp`, `su`): storm identity plus the socket-layer fault and
/// retry knobs. All processes of one deployment must agree on
/// `sessions` and `seed`.
#[derive(Debug, Clone, PartialEq)]
pub struct NetFlags {
    /// Number of SU sessions in the storm.
    pub sessions: u32,
    /// Storm seed (system state, engines and faults derive from it).
    pub seed: u64,
    /// Per-link drop probability on this process's outbound traffic.
    pub drop: f64,
    /// Per-link duplicate probability.
    pub dup: f64,
    /// Per-link reorder probability.
    pub reorder: f64,
    /// Per-link corruption probability.
    pub corrupt: f64,
    /// Retry budget per session.
    pub retries: u32,
    /// Base receive deadline in milliseconds.
    pub timeout_ms: u64,
}

impl Default for NetFlags {
    fn default() -> Self {
        NetFlags {
            sessions: 8,
            seed: 2017,
            drop: 0.0,
            dup: 0.0,
            reorder: 0.0,
            corrupt: 0.0,
            retries: 8,
            timeout_ms: 1500,
        }
    }
}

/// Durability flags shared by `serve-sdc` and `serve-stp`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableFlags {
    /// Checkpoint directory (`None` disables durability).
    pub state_dir: Option<String>,
    /// Checkpoint after every N handled frames (must be positive).
    pub checkpoint_every: u64,
    /// Resume from the checkpoint in `state_dir` at startup.
    pub resume: bool,
}

impl Default for DurableFlags {
    fn default() -> Self {
        DurableFlags {
            state_dir: None,
            checkpoint_every: 1,
            resume: false,
        }
    }
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Quickstart flow.
    Demo,
    /// Key generation with modulus size.
    Keygen {
        /// Paillier modulus bits.
        bits: usize,
    },
    /// Churn simulation.
    Simulate {
        /// Simulated hours.
        hours: usize,
        /// Number of PUs.
        pus: usize,
        /// Number of SUs.
        sus: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Concurrent session storm over a fault-injecting network.
    Storm {
        /// Number of concurrent SU sessions.
        sus: u32,
        /// Per-link drop probability.
        drop: f64,
        /// Per-link duplicate probability.
        dup: f64,
        /// Per-link reorder probability.
        reorder: f64,
        /// Per-link corruption probability.
        corrupt: f64,
        /// RNG seed (system, sessions and faults all derive from it).
        seed: u64,
        /// Retry budget per session.
        retries: u32,
        /// Base receive deadline in milliseconds.
        timeout_ms: u64,
        /// Where to write the per-phase metrics report as JSON.
        metrics_out: Option<String>,
        /// Where to write the Chrome-trace (`chrome://tracing`) file.
        trace_out: Option<String>,
    },
    /// Deterministic discrete-event storm simulation on virtual time.
    Sim {
        /// Number of concurrent SU sessions.
        sus: u32,
        /// Per-link drop probability.
        drop: f64,
        /// Per-link duplicate probability.
        dup: f64,
        /// Per-link reorder probability.
        reorder: f64,
        /// Per-link corruption probability.
        corrupt: f64,
        /// Storm seed (engines, faults and latency all derive from it).
        seed: u64,
        /// Retry budget per session.
        retries: u32,
        /// Base receive deadline in (virtual) milliseconds.
        timeout_ms: u64,
        /// Run the real crypto engines instead of the plaintext model.
        real: bool,
        /// Run the multi-seed sweep harness instead of one storm.
        sweep: bool,
        /// Where to write the storm/sweep report as JSON.
        metrics_out: Option<String>,
    },
    /// The SDC as a networked TCP service.
    ServeSdc {
        /// Listen address.
        listen: String,
        /// The STP's address (dialed lazily).
        stp: String,
        /// Shared storm flags.
        net: NetFlags,
        /// Checkpoint / crash-recovery flags.
        durable: DurableFlags,
    },
    /// The STP as a networked TCP service.
    ServeStp {
        /// Listen address.
        listen: String,
        /// Shared storm flags.
        net: NetFlags,
        /// Checkpoint / crash-recovery flags.
        durable: DurableFlags,
    },
    /// The SU swarm driving a storm against a live SDC service.
    Su {
        /// The SDC's address.
        sdc: String,
        /// Shared storm flags.
        net: NetFlags,
        /// Send an in-band shutdown to the SDC (cascading to the STP)
        /// once every session finished.
        halt: bool,
        /// Replay the storm on the in-memory engine and compare every
        /// grant/deny decision.
        verify: bool,
        /// Where to write the per-phase metrics report as JSON.
        metrics_out: Option<String>,
    },
    /// Per-phase protocol benchmark mirroring the paper's Tables 2-3.
    Bench {
        /// Paillier modulus bits.
        bits: usize,
        /// Iterations to average over.
        iters: usize,
        /// Print the per-phase metrics table.
        metrics: bool,
        /// Where to write the metrics report as JSON.
        metrics_out: Option<String>,
        /// Randomizer-pool capacity (0 = pools disabled); refilled
        /// between iterations, outside the timed phases.
        pool: usize,
        /// Worker threads for the phase fan-outs.
        threads: usize,
    },
    /// Golden-trace record/replay regression gate.
    Trace {
        /// Record a storm trace to this file.
        record: Option<String>,
        /// Replay (and verify) the trace in this file.
        replay: Option<String>,
        /// Number of SU sessions (record mode).
        sessions: u32,
        /// Storm seed (record mode).
        seed: u64,
    },
    /// Inference-attack demo.
    Attack,
    /// Table I printout.
    Info,
}

/// Parses `argv` (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let mut it = argv.iter();
    let cmd = it.next().ok_or("missing command")?;
    match cmd.as_str() {
        "demo" => reject_extras(it).map(|()| Command::Demo),
        "attack" => reject_extras(it).map(|()| Command::Attack),
        "info" => reject_extras(it).map(|()| Command::Info),
        "keygen" => {
            let mut bits = 1024usize;
            parse_flags(it, |flag, value| match flag {
                "--bits" => {
                    bits = parse_num(flag, value)?;
                    if bits < 64 || !bits.is_multiple_of(2) {
                        return Err(format!("--bits must be an even number >= 64, got {bits}"));
                    }
                    Ok(())
                }
                other => Err(format!("unknown flag {other}")),
            })?;
            Ok(Command::Keygen { bits })
        }
        "simulate" => {
            let (mut hours, mut pus, mut sus, mut seed) = (4usize, 8usize, 4usize, 2017u64);
            parse_flags(it, |flag, value| match flag {
                "--hours" => {
                    hours = parse_num(flag, value)?;
                    Ok(())
                }
                "--pus" => {
                    pus = parse_num(flag, value)?;
                    Ok(())
                }
                "--sus" => {
                    sus = parse_num(flag, value)?;
                    Ok(())
                }
                "--seed" => {
                    seed = parse_num(flag, value)?;
                    Ok(())
                }
                other => Err(format!("unknown flag {other}")),
            })?;
            if hours == 0 || pus == 0 || sus == 0 {
                return Err("--hours, --pus and --sus must be positive".into());
            }
            Ok(Command::Simulate {
                hours,
                pus,
                sus,
                seed,
            })
        }
        "storm" => {
            let (mut sus, mut seed, mut retries, mut timeout_ms) = (8u32, 2017u64, 8u32, 1500u64);
            let (mut drop, mut dup, mut reorder, mut corrupt) = (0.1f64, 0.1f64, 0.1f64, 0.0f64);
            let (mut metrics_out, mut trace_out) = (None, None);
            let prob = |flag: &str, value: &str, slot: &mut f64| -> Result<(), String> {
                *slot = parse_num(flag, value)?;
                if !(0.0..=1.0).contains(slot) {
                    return Err(format!("{flag} must be a probability in [0, 1]"));
                }
                Ok(())
            };
            parse_flags(it, |flag, value| match flag {
                "--sus" => {
                    sus = parse_num(flag, value)?;
                    Ok(())
                }
                "--drop" => prob(flag, value, &mut drop),
                "--dup" => prob(flag, value, &mut dup),
                "--reorder" => prob(flag, value, &mut reorder),
                "--corrupt" => prob(flag, value, &mut corrupt),
                "--seed" => {
                    seed = parse_num(flag, value)?;
                    Ok(())
                }
                "--retries" => {
                    retries = parse_num(flag, value)?;
                    Ok(())
                }
                "--timeout-ms" => {
                    timeout_ms = parse_num(flag, value)?;
                    Ok(())
                }
                "--metrics-out" => {
                    metrics_out = Some(value.to_owned());
                    Ok(())
                }
                "--trace-out" => {
                    trace_out = Some(value.to_owned());
                    Ok(())
                }
                other => Err(format!("unknown flag {other}")),
            })?;
            if sus == 0 || timeout_ms == 0 {
                return Err("--sus and --timeout-ms must be positive".into());
            }
            Ok(Command::Storm {
                sus,
                drop,
                dup,
                reorder,
                corrupt,
                seed,
                retries,
                timeout_ms,
                metrics_out,
                trace_out,
            })
        }
        "sim" => {
            let (mut sus, mut seed, mut retries, mut timeout_ms) = (1024u32, 2017u64, 6u32, 200u64);
            let (mut drop, mut dup, mut reorder, mut corrupt) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            let (mut real, mut sweep) = (false, false);
            let mut metrics_out = None;
            let prob = |flag: &str, value: &str, slot: &mut f64| -> Result<(), String> {
                *slot = parse_num(flag, value)?;
                if !(0.0..=1.0).contains(slot) {
                    return Err(format!("{flag} must be a probability in [0, 1]"));
                }
                Ok(())
            };
            let mut it = it;
            while let Some(flag) = it.next() {
                let mut value = || {
                    it.next()
                        .ok_or_else(|| format!("flag {flag} needs a value"))
                };
                match flag.as_str() {
                    "--sweep" => sweep = true,
                    "--mode" => match value()?.as_str() {
                        "real" => real = true,
                        "modeled" => real = false,
                        other => {
                            return Err(format!("--mode must be real or modeled, got {other:?}"))
                        }
                    },
                    "--sus" => sus = parse_num(flag, value()?)?,
                    "--drop" => prob(flag, value()?, &mut drop)?,
                    "--dup" => prob(flag, value()?, &mut dup)?,
                    "--reorder" => prob(flag, value()?, &mut reorder)?,
                    "--corrupt" => prob(flag, value()?, &mut corrupt)?,
                    "--seed" => seed = parse_num(flag, value()?)?,
                    "--retries" => retries = parse_num(flag, value()?)?,
                    "--timeout-ms" => timeout_ms = parse_num(flag, value()?)?,
                    "--metrics-out" => metrics_out = Some(value()?.to_owned()),
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            if sus == 0 || timeout_ms == 0 {
                return Err("--sus and --timeout-ms must be positive".into());
            }
            if real && sus > 4096 {
                return Err(format!(
                    "--mode real runs the full cryptosystem; {sus} SUs would take \
                     hours (use --mode modeled beyond 4096)"
                ));
            }
            Ok(Command::Sim {
                sus,
                drop,
                dup,
                reorder,
                corrupt,
                seed,
                retries,
                timeout_ms,
                real,
                sweep,
                metrics_out,
            })
        }
        "serve-sdc" => {
            let mut listen = "127.0.0.1:7001".to_owned();
            let mut stp = "127.0.0.1:7002".to_owned();
            let mut net = NetFlags::default();
            let mut durable = DurableFlags::default();
            let mut it = it;
            while let Some(flag) = it.next() {
                let mut value = || {
                    it.next()
                        .ok_or_else(|| format!("flag {flag} needs a value"))
                };
                match flag.as_str() {
                    "--resume" => durable.resume = true,
                    "--listen" => listen = value()?.to_owned(),
                    "--stp" => stp = value()?.to_owned(),
                    "--state-dir" => durable.state_dir = Some(value()?.to_owned()),
                    "--checkpoint-every" => durable.checkpoint_every = parse_num(flag, value()?)?,
                    other => parse_net_flag(other, value()?, &mut net)?,
                }
            }
            check_net_flags(&net)?;
            check_durable_flags(&durable)?;
            Ok(Command::ServeSdc {
                listen,
                stp,
                net,
                durable,
            })
        }
        "serve-stp" => {
            let mut listen = "127.0.0.1:7002".to_owned();
            let mut net = NetFlags::default();
            let mut durable = DurableFlags::default();
            let mut it = it;
            while let Some(flag) = it.next() {
                let mut value = || {
                    it.next()
                        .ok_or_else(|| format!("flag {flag} needs a value"))
                };
                match flag.as_str() {
                    "--resume" => durable.resume = true,
                    "--listen" => listen = value()?.to_owned(),
                    "--state-dir" => durable.state_dir = Some(value()?.to_owned()),
                    "--checkpoint-every" => durable.checkpoint_every = parse_num(flag, value()?)?,
                    other => parse_net_flag(other, value()?, &mut net)?,
                }
            }
            check_net_flags(&net)?;
            check_durable_flags(&durable)?;
            Ok(Command::ServeStp {
                listen,
                net,
                durable,
            })
        }
        "trace" => {
            let (mut record, mut replay) = (None, None);
            let (mut sessions, mut seed) = (4u32, 2017u64);
            parse_flags(it, |flag, value| match flag {
                "--record" => {
                    record = Some(value.to_owned());
                    Ok(())
                }
                "--replay" => {
                    replay = Some(value.to_owned());
                    Ok(())
                }
                "--sessions" => {
                    sessions = parse_num(flag, value)?;
                    Ok(())
                }
                "--seed" => {
                    seed = parse_num(flag, value)?;
                    Ok(())
                }
                other => Err(format!("unknown flag {other}")),
            })?;
            match (&record, &replay) {
                (None, None) => return Err("trace needs --record FILE or --replay FILE".into()),
                (Some(_), Some(_)) => {
                    return Err("trace takes --record or --replay, not both".into())
                }
                _ => {}
            }
            if sessions == 0 {
                return Err("--sessions must be positive".into());
            }
            Ok(Command::Trace {
                record,
                replay,
                sessions,
                seed,
            })
        }
        "su" => {
            let mut sdc = "127.0.0.1:7001".to_owned();
            let mut net = NetFlags::default();
            let (mut halt, mut verify) = (false, false);
            let mut metrics_out = None;
            let mut it = it;
            while let Some(flag) = it.next() {
                let mut value = || {
                    it.next()
                        .ok_or_else(|| format!("flag {flag} needs a value"))
                };
                match flag.as_str() {
                    "--halt" => halt = true,
                    "--verify" => verify = true,
                    "--sdc" => sdc = value()?.to_owned(),
                    "--metrics-out" => metrics_out = Some(value()?.to_owned()),
                    other => parse_net_flag(other, value()?, &mut net)?,
                }
            }
            check_net_flags(&net)?;
            Ok(Command::Su {
                sdc,
                net,
                halt,
                verify,
                metrics_out,
            })
        }
        "bench" => {
            let (mut bits, mut iters) = (512usize, 4usize);
            let mut metrics = false;
            let mut metrics_out = None;
            let (mut pool, mut threads) = (0usize, 1usize);
            let mut it = it.peekable();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--metrics" => metrics = true,
                    "--bits" => {
                        let value = it.next().ok_or("flag --bits needs a value")?;
                        bits = parse_num(flag, value)?;
                        // The bench config's blinding budget needs a
                        // 256-bit plaintext space at minimum.
                        if bits < 256 || !bits.is_multiple_of(2) {
                            return Err(format!(
                                "--bits must be an even number >= 256, got {bits}"
                            ));
                        }
                    }
                    "--iters" => {
                        let value = it.next().ok_or("flag --iters needs a value")?;
                        iters = parse_num(flag, value)?;
                    }
                    "--metrics-out" => {
                        let value = it.next().ok_or("flag --metrics-out needs a value")?;
                        metrics_out = Some(value.to_owned());
                    }
                    "--pool" => {
                        let value = it.next().ok_or("flag --pool needs a value")?;
                        pool = parse_num(flag, value)?;
                    }
                    "--threads" => {
                        let value = it.next().ok_or("flag --threads needs a value")?;
                        threads = parse_num(flag, value)?;
                        if threads == 0 {
                            return Err("--threads must be positive".into());
                        }
                    }
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            if iters == 0 {
                return Err("--iters must be positive".into());
            }
            Ok(Command::Bench {
                bits,
                iters,
                metrics,
                metrics_out,
                pool,
                threads,
            })
        }
        "--help" | "-h" | "help" => Err("help requested".into()),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Handles one flag shared by the networked roles; any other flag is an
/// error.
fn parse_net_flag(flag: &str, value: &str, net: &mut NetFlags) -> Result<(), String> {
    let prob = |flag: &str, value: &str, slot: &mut f64| -> Result<(), String> {
        *slot = parse_num(flag, value)?;
        if !(0.0..=1.0).contains(slot) {
            return Err(format!("{flag} must be a probability in [0, 1]"));
        }
        Ok(())
    };
    match flag {
        "--sessions" => {
            net.sessions = parse_num(flag, value)?;
            Ok(())
        }
        "--seed" => {
            net.seed = parse_num(flag, value)?;
            Ok(())
        }
        "--drop" => prob(flag, value, &mut net.drop),
        "--dup" => prob(flag, value, &mut net.dup),
        "--reorder" => prob(flag, value, &mut net.reorder),
        "--corrupt" => prob(flag, value, &mut net.corrupt),
        "--retries" => {
            net.retries = parse_num(flag, value)?;
            Ok(())
        }
        "--timeout-ms" => {
            net.timeout_ms = parse_num(flag, value)?;
            Ok(())
        }
        other => Err(format!("unknown flag {other}")),
    }
}

fn check_net_flags(net: &NetFlags) -> Result<(), String> {
    if net.sessions == 0 || net.timeout_ms == 0 {
        return Err("--sessions and --timeout-ms must be positive".into());
    }
    Ok(())
}

fn check_durable_flags(durable: &DurableFlags) -> Result<(), String> {
    if durable.checkpoint_every == 0 {
        return Err("--checkpoint-every must be positive".into());
    }
    if durable.resume && durable.state_dir.is_none() {
        return Err("--resume requires --state-dir".into());
    }
    Ok(())
}

fn reject_extras<'a>(mut it: impl Iterator<Item = &'a String>) -> Result<(), String> {
    match it.next() {
        None => Ok(()),
        Some(extra) => Err(format!("unexpected argument {extra:?}")),
    }
}

fn parse_flags<'a>(
    mut it: impl Iterator<Item = &'a String>,
    mut handle: impl FnMut(&str, &str) -> Result<(), String>,
) -> Result<(), String> {
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        handle(flag, value)?;
    }
    Ok(())
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag} expects a number, got {value:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn simple_commands() {
        assert_eq!(parse(&argv("demo")).unwrap(), Command::Demo);
        assert_eq!(parse(&argv("attack")).unwrap(), Command::Attack);
        assert_eq!(parse(&argv("info")).unwrap(), Command::Info);
    }

    #[test]
    fn keygen_defaults_and_flags() {
        assert_eq!(
            parse(&argv("keygen")).unwrap(),
            Command::Keygen { bits: 1024 }
        );
        assert_eq!(
            parse(&argv("keygen --bits 512")).unwrap(),
            Command::Keygen { bits: 512 }
        );
        assert!(parse(&argv("keygen --bits 63")).is_err());
        assert!(parse(&argv("keygen --bits 65")).is_err());
        assert!(parse(&argv("keygen --bits")).is_err());
        assert!(parse(&argv("keygen --what 1")).is_err());
    }

    #[test]
    fn simulate_flags() {
        assert_eq!(
            parse(&argv("simulate")).unwrap(),
            Command::Simulate {
                hours: 4,
                pus: 8,
                sus: 4,
                seed: 2017
            }
        );
        assert_eq!(
            parse(&argv("simulate --hours 2 --pus 3 --sus 5 --seed 7")).unwrap(),
            Command::Simulate {
                hours: 2,
                pus: 3,
                sus: 5,
                seed: 7
            }
        );
        assert!(parse(&argv("simulate --hours 0")).is_err());
        assert!(parse(&argv("simulate --hours x")).is_err());
    }

    #[test]
    fn storm_defaults_and_flags() {
        assert_eq!(
            parse(&argv("storm")).unwrap(),
            Command::Storm {
                sus: 8,
                drop: 0.1,
                dup: 0.1,
                reorder: 0.1,
                corrupt: 0.0,
                seed: 2017,
                retries: 8,
                timeout_ms: 1500,
                metrics_out: None,
                trace_out: None,
            }
        );
        assert_eq!(
            parse(&argv(
                "storm --sus 4 --drop 0.2 --dup 0 --reorder 0 --corrupt 0.05 \
                 --seed 9 --retries 3 --timeout-ms 700"
            ))
            .unwrap(),
            Command::Storm {
                sus: 4,
                drop: 0.2,
                dup: 0.0,
                reorder: 0.0,
                corrupt: 0.05,
                seed: 9,
                retries: 3,
                timeout_ms: 700,
                metrics_out: None,
                trace_out: None,
            }
        );
        assert!(parse(&argv("storm --drop 1.5")).is_err());
        assert!(parse(&argv("storm --sus 0")).is_err());
        assert!(parse(&argv("storm --what 1")).is_err());
    }

    #[test]
    fn storm_metrics_flags() {
        let cmd = parse(&argv(
            "storm --sus 2 --metrics-out m.json --trace-out t.json",
        ))
        .unwrap();
        match cmd {
            Command::Storm {
                metrics_out,
                trace_out,
                ..
            } => {
                assert_eq!(metrics_out.as_deref(), Some("m.json"));
                assert_eq!(trace_out.as_deref(), Some("t.json"));
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(parse(&argv("storm --metrics-out")).is_err());
    }

    #[test]
    fn sim_defaults_and_flags() {
        assert_eq!(
            parse(&argv("sim")).unwrap(),
            Command::Sim {
                sus: 1024,
                drop: 0.0,
                dup: 0.0,
                reorder: 0.0,
                corrupt: 0.0,
                seed: 2017,
                retries: 6,
                timeout_ms: 200,
                real: false,
                sweep: false,
                metrics_out: None,
            }
        );
        assert_eq!(
            parse(&argv(
                "sim --sus 100000 --drop 0.1 --dup 0.05 --reorder 0.1 --corrupt 0.02 \
                 --seed 7 --retries 4 --timeout-ms 300 --mode modeled --sweep \
                 --metrics-out s.json"
            ))
            .unwrap(),
            Command::Sim {
                sus: 100_000,
                drop: 0.1,
                dup: 0.05,
                reorder: 0.1,
                corrupt: 0.02,
                seed: 7,
                retries: 4,
                timeout_ms: 300,
                real: false,
                sweep: true,
                metrics_out: Some("s.json".into()),
            }
        );
        match parse(&argv("sim --mode real --sus 16")).unwrap() {
            Command::Sim { real, sus, .. } => {
                assert!(real);
                assert_eq!(sus, 16);
            }
            other => panic!("parsed {other:?}"),
        }
        // Real mode refuses storm sizes the cryptosystem cannot reach.
        assert!(parse(&argv("sim --mode real --sus 100000")).is_err());
        assert!(parse(&argv("sim --mode turbo")).is_err());
        assert!(parse(&argv("sim --drop 1.5")).is_err());
        assert!(parse(&argv("sim --sus 0")).is_err());
        assert!(parse(&argv("sim --metrics-out")).is_err());
        assert!(parse(&argv("sim --what 1")).is_err());
    }

    #[test]
    fn serve_sdc_defaults_and_flags() {
        assert_eq!(
            parse(&argv("serve-sdc")).unwrap(),
            Command::ServeSdc {
                listen: "127.0.0.1:7001".into(),
                stp: "127.0.0.1:7002".into(),
                net: NetFlags::default(),
                durable: DurableFlags::default(),
            }
        );
        assert_eq!(
            parse(&argv(
                "serve-sdc --listen 0.0.0.0:9001 --stp stp.example:9002 \
                 --sessions 16 --seed 7 --drop 0.1 --retries 12 --timeout-ms 900"
            ))
            .unwrap(),
            Command::ServeSdc {
                listen: "0.0.0.0:9001".into(),
                stp: "stp.example:9002".into(),
                net: NetFlags {
                    sessions: 16,
                    seed: 7,
                    drop: 0.1,
                    retries: 12,
                    timeout_ms: 900,
                    ..NetFlags::default()
                },
                durable: DurableFlags::default(),
            }
        );
        assert!(parse(&argv("serve-sdc --sessions 0")).is_err());
        assert!(parse(&argv("serve-sdc --drop 1.5")).is_err());
        assert!(parse(&argv("serve-sdc --what 1")).is_err());
    }

    #[test]
    fn serve_sdc_durable_flags() {
        assert_eq!(
            parse(&argv(
                "serve-sdc --state-dir /tmp/pisa --checkpoint-every 4 --resume"
            ))
            .unwrap(),
            Command::ServeSdc {
                listen: "127.0.0.1:7001".into(),
                stp: "127.0.0.1:7002".into(),
                net: NetFlags::default(),
                durable: DurableFlags {
                    state_dir: Some("/tmp/pisa".into()),
                    checkpoint_every: 4,
                    resume: true,
                },
            }
        );
        // --resume without a state dir cannot work; reject at parse time.
        assert!(parse(&argv("serve-sdc --resume")).is_err());
        assert!(parse(&argv("serve-sdc --checkpoint-every 0")).is_err());
        assert!(parse(&argv("serve-sdc --state-dir")).is_err());
    }

    #[test]
    fn serve_stp_defaults_and_flags() {
        assert_eq!(
            parse(&argv("serve-stp")).unwrap(),
            Command::ServeStp {
                listen: "127.0.0.1:7002".into(),
                net: NetFlags::default(),
                durable: DurableFlags::default(),
            }
        );
        assert_eq!(
            parse(&argv("serve-stp --listen 127.0.0.1:0 --sessions 4")).unwrap(),
            Command::ServeStp {
                listen: "127.0.0.1:0".into(),
                net: NetFlags {
                    sessions: 4,
                    ..NetFlags::default()
                },
                durable: DurableFlags::default(),
            }
        );
        assert_eq!(
            parse(&argv("serve-stp --state-dir state --resume")).unwrap(),
            Command::ServeStp {
                listen: "127.0.0.1:7002".into(),
                net: NetFlags::default(),
                durable: DurableFlags {
                    state_dir: Some("state".into()),
                    checkpoint_every: 1,
                    resume: true,
                },
            }
        );
        assert!(parse(&argv("serve-stp --stp 1.2.3.4:5")).is_err());
        assert!(parse(&argv("serve-stp --resume")).is_err());
    }

    #[test]
    fn trace_flags() {
        assert_eq!(
            parse(&argv("trace --record t.trc --sessions 2 --seed 9")).unwrap(),
            Command::Trace {
                record: Some("t.trc".into()),
                replay: None,
                sessions: 2,
                seed: 9,
            }
        );
        assert_eq!(
            parse(&argv("trace --replay t.trc")).unwrap(),
            Command::Trace {
                record: None,
                replay: Some("t.trc".into()),
                sessions: 4,
                seed: 2017,
            }
        );
        assert!(parse(&argv("trace")).is_err(), "one mode is required");
        assert!(parse(&argv("trace --record a --replay b")).is_err());
        assert!(parse(&argv("trace --record a --sessions 0")).is_err());
        assert!(parse(&argv("trace --what 1")).is_err());
    }

    #[test]
    fn su_defaults_and_flags() {
        assert_eq!(
            parse(&argv("su")).unwrap(),
            Command::Su {
                sdc: "127.0.0.1:7001".into(),
                net: NetFlags::default(),
                halt: false,
                verify: false,
                metrics_out: None,
            }
        );
        assert_eq!(
            parse(&argv(
                "su --sdc sdc.example:9001 --sessions 16 --seed 3 --corrupt 0.05 \
                 --halt --verify --metrics-out net.json"
            ))
            .unwrap(),
            Command::Su {
                sdc: "sdc.example:9001".into(),
                net: NetFlags {
                    sessions: 16,
                    seed: 3,
                    corrupt: 0.05,
                    ..NetFlags::default()
                },
                halt: true,
                verify: true,
                metrics_out: Some("net.json".into()),
            }
        );
        assert!(parse(&argv("su --timeout-ms 0")).is_err());
        assert!(parse(&argv("su --metrics-out")).is_err());
        assert!(parse(&argv("su --listen 127.0.0.1:1")).is_err());
    }

    #[test]
    fn bench_defaults_and_flags() {
        assert_eq!(
            parse(&argv("bench")).unwrap(),
            Command::Bench {
                bits: 512,
                iters: 4,
                metrics: false,
                metrics_out: None,
                pool: 0,
                threads: 1,
            }
        );
        assert_eq!(
            parse(&argv(
                "bench --bits 256 --iters 2 --metrics --metrics-out b.json --pool 128 --threads 4"
            ))
            .unwrap(),
            Command::Bench {
                bits: 256,
                iters: 2,
                metrics: true,
                metrics_out: Some("b.json".into()),
                pool: 128,
                threads: 4,
            }
        );
        assert!(parse(&argv("bench --bits 63")).is_err());
        assert!(parse(&argv("bench --iters 0")).is_err());
        assert!(parse(&argv("bench --threads 0")).is_err());
        assert!(parse(&argv("bench --pool")).is_err());
        assert!(parse(&argv("bench --what 1")).is_err());
    }

    #[test]
    fn errors() {
        assert!(parse(&[]).is_err());
        assert!(parse(&argv("bogus")).is_err());
        assert!(parse(&argv("demo extra")).is_err());
        assert!(parse(&argv("--help")).is_err());
    }
}
