//! Command implementations.

use crate::args::{Command, DurableFlags, NetFlags};
use pisa::adversary;
use pisa::prelude::*;
use pisa_watch::{PuInput, SuRequest, WatchSdc};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::process::ExitCode;
use std::time::Instant;

/// Dispatches a parsed command. Returns a failure code when a
/// requested export (metrics/trace file) could not be written, so
/// scripts don't mistake a missing report for a successful run.
pub fn run(cmd: Command) -> ExitCode {
    match cmd {
        Command::Demo => done(demo),
        Command::Keygen { bits } => done(|| keygen(bits)),
        Command::Simulate {
            hours,
            pus,
            sus,
            seed,
        } => done(|| simulate(hours, pus, sus, seed)),
        Command::Storm {
            sus,
            drop,
            dup,
            reorder,
            corrupt,
            seed,
            retries,
            timeout_ms,
            metrics_out,
            trace_out,
        } => storm(StormOpts {
            sus,
            drop,
            dup,
            reorder,
            corrupt,
            seed,
            retries,
            timeout_ms,
            metrics_out,
            trace_out,
        }),
        Command::Sim {
            sus,
            drop,
            dup,
            reorder,
            corrupt,
            seed,
            retries,
            timeout_ms,
            real,
            sweep,
            metrics_out,
        } => sim(SimOpts {
            sus,
            drop,
            dup,
            reorder,
            corrupt,
            seed,
            retries,
            timeout_ms,
            real,
            sweep,
            metrics_out,
        }),
        Command::ServeSdc {
            listen,
            stp,
            net,
            durable,
        } => serve_sdc(&listen, &stp, &net, &durable),
        Command::ServeStp {
            listen,
            net,
            durable,
        } => serve_stp(&listen, &net, &durable),
        Command::Trace {
            record,
            replay,
            sessions,
            seed,
        } => trace(record, replay, sessions, seed),
        Command::Su {
            sdc,
            net,
            halt,
            verify,
            metrics_out,
        } => su_storm(&sdc, &net, halt, verify, metrics_out),
        Command::Bench {
            bits,
            iters,
            metrics,
            metrics_out,
            pool,
            threads,
        } => bench(bits, iters, metrics, metrics_out, pool, threads),
        Command::Attack => done(attack),
        Command::Info => done(info),
    }
}

/// Runs an infallible command for the `run` dispatch table.
fn done(f: impl FnOnce()) -> ExitCode {
    f();
    ExitCode::SUCCESS
}

/// Parsed `storm` options (one struct instead of ten positional args).
struct StormOpts {
    sus: u32,
    drop: f64,
    dup: f64,
    reorder: f64,
    corrupt: f64,
    seed: u64,
    retries: u32,
    timeout_ms: u64,
    metrics_out: Option<String>,
    trace_out: Option<String>,
}

/// Builds the "net" section grafted into the metrics report: total
/// traffic, injected faults, and session resilience counters.
fn net_section(metrics: &pisa_net::NetMetrics) -> pisa_obs::json::Value {
    use pisa_obs::json::Value;
    let f = metrics.fault_totals();
    let s = metrics.session_totals();
    Value::object(vec![
        ("bytes_on_wire", Value::from_u64(metrics.total_bytes())),
        ("messages", Value::from_u64(metrics.total_messages())),
        (
            "faults",
            Value::object(vec![
                ("dropped", Value::from_u64(f.dropped)),
                ("duplicated", Value::from_u64(f.duplicated)),
                ("reordered", Value::from_u64(f.reordered)),
                ("corrupted", Value::from_u64(f.corrupted)),
                ("corrupt_dropped", Value::from_u64(f.corrupt_dropped)),
            ]),
        ),
        (
            "sessions",
            Value::object(vec![
                ("retries", Value::from_u64(s.retries)),
                ("timeouts", Value::from_u64(s.timeouts)),
                ("rejected", Value::from_u64(s.rejected)),
            ]),
        ),
    ])
}

/// Writes `contents` to `path`, reporting failures without panicking.
/// Returns whether the write succeeded.
fn write_output(kind: &str, path: &str, contents: &str) -> bool {
    match std::fs::write(path, contents) {
        Ok(()) => {
            println!("{kind} written to {path}");
            true
        }
        Err(e) => {
            eprintln!("failed to write {kind} to {path}: {e}");
            false
        }
    }
}

fn storm(opts: StormOpts) -> ExitCode {
    use pisa::{run_storm, EngineConfig};
    use pisa_net::{FaultConfig, FaultPlan};
    use std::time::Duration;

    let StormOpts {
        sus,
        drop,
        dup,
        reorder,
        corrupt,
        seed,
        retries,
        timeout_ms,
        metrics_out,
        trace_out,
    } = opts;
    let observing = metrics_out.is_some() || trace_out.is_some();
    if observing {
        pisa_obs::set_enabled(true);
        pisa_obs::reset();
    }

    // The shared fixture: one PU on channel 0 (so sessions near it get
    // denied and the storm exercises both decisions), `sus` SU clients.
    // The same function seeds the networked roles, so `pisa storm` and
    // a `serve-sdc`/`serve-stp`/`su` deployment agree on every key.
    let fixture = match pisa::storm_fixture(sus, seed) {
        Ok(fixture) => fixture,
        Err(e) => {
            eprintln!("storm setup failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let pisa::StormFixture {
        sus: clients,
        sdc,
        stp,
    } = fixture;

    let plan = FaultPlan::none()
        .with_drop(drop)
        .with_duplicate(dup)
        .with_reorder(reorder)
        .with_corrupt(corrupt);
    println!(
        "storm: {sus} sessions, faults/link: {:.0}% drop, {:.0}% dup, {:.0}% reorder, {:.0}% corrupt\n",
        drop * 100.0,
        dup * 100.0,
        reorder * 100.0,
        corrupt * 100.0
    );
    let faults = FaultConfig::new(seed ^ 0xfa17).with_default_plan(plan);
    let engine = EngineConfig::default()
        .with_timeout(Duration::from_millis(timeout_ms))
        .with_max_retries(retries);

    let t = Instant::now();
    let (report, _sdc, _stp) = run_storm(clients, sdc, stp, Some(faults), &engine, seed).unwrap();
    let elapsed = t.elapsed();

    for o in &report.outcomes {
        let stats = report
            .metrics
            .session(u64::from(o.su_id.0))
            .unwrap_or_default();
        println!(
            "  SU {:>3}: {:<9} after {} attempt(s)  (timeouts {}, rejects {})",
            o.su_id.0,
            match o.granted {
                Some(true) => "GRANTED",
                Some(false) => "DENIED",
                None => "EXHAUSTED",
            },
            o.attempts,
            stats.timeouts,
            stats.rejected,
        );
    }
    let f = report.metrics.fault_totals();
    let s = report.metrics.session_totals();
    println!(
        "\nfaults injected: {} dropped, {} duplicated, {} reordered, {} corrupted (+{} absorbed)",
        f.dropped, f.duplicated, f.reordered, f.corrupted, f.corrupt_dropped
    );
    println!(
        "sessions absorbed them with {} retries, {} timeouts, {} rejected messages",
        s.retries, s.timeouts, s.rejected
    );
    println!(
        "{}/{} sessions decided in {:.2} s ({:.1} KiB moved)",
        report
            .outcomes
            .iter()
            .filter(|o| o.granted.is_some())
            .count(),
        report.outcomes.len(),
        elapsed.as_secs_f64(),
        report.metrics.total_bytes() as f64 / 1024.0
    );

    let mut exports_ok = true;
    if observing {
        pisa_obs::set_enabled(false);
        let obs_report = pisa_obs::report();
        println!("\nper-phase breakdown (paper Tables 2-3):");
        print!("{}", obs_report.render_table());
        if let Some(path) = metrics_out {
            let mut doc = obs_report.to_value();
            if let pisa_obs::json::Value::Obj(fields) = &mut doc {
                fields.push(("net".to_owned(), net_section(&report.metrics)));
            }
            exports_ok &= write_output("metrics report", &path, &doc.to_json());
        }
        if let Some(path) = trace_out {
            exports_ok &= write_output("chrome trace", &path, &obs_report.to_chrome_trace());
        }
    }
    if exports_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Shared flag translation for the networked roles.
fn net_storm_opts(net: &NetFlags) -> pisa::NetStormOpts {
    use pisa::{EngineConfig, NetStormOpts};
    use pisa_net::{FaultConfig, FaultPlan};
    use std::time::Duration;

    let plan = FaultPlan::none()
        .with_drop(net.drop)
        .with_duplicate(net.dup)
        .with_reorder(net.reorder)
        .with_corrupt(net.corrupt);
    let chaotic = net.drop > 0.0 || net.dup > 0.0 || net.reorder > 0.0 || net.corrupt > 0.0;
    let mut opts = NetStormOpts::new(net.sessions, net.seed);
    opts.engine = EngineConfig::default()
        .with_timeout(Duration::from_millis(net.timeout_ms))
        .with_max_retries(net.retries);
    // The same fault-seed convention as `pisa storm`, so the socket
    // chaos draws from the link streams the in-memory network would.
    opts.faults = chaotic.then(|| FaultConfig::new(net.seed ^ 0xfa17).with_default_plan(plan));
    opts
}

/// Grafts the parsed checkpoint flags onto the shared storm options.
fn durable_opts(durable: &DurableFlags) -> pisa::DurableOpts {
    pisa::DurableOpts {
        state_dir: durable.state_dir.as_deref().map(std::path::PathBuf::from),
        checkpoint_every: durable.checkpoint_every,
        resume: durable.resume,
    }
}

/// `pisa serve-sdc`: the SDC trust domain as its own process.
fn serve_sdc(listen: &str, stp: &str, net: &NetFlags, durable: &DurableFlags) -> ExitCode {
    let mut opts = net_storm_opts(net);
    opts.durable = durable_opts(durable);
    if let Some(dir) = &durable.state_dir {
        println!(
            "serve-sdc: {} {dir} (checkpoint every {} frame(s))",
            if durable.resume {
                "resuming from"
            } else {
                "checkpointing to"
            },
            durable.checkpoint_every
        );
    }
    println!(
        "serve-sdc: deriving system state for {} sessions (seed {})...",
        net.sessions, net.seed
    );
    let service = match pisa::SdcService::bind(&opts, listen, stp) {
        Ok(service) => service,
        Err(e) => {
            eprintln!("serve-sdc failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match service.local_addr() {
        Some(addr) => println!("SDC serving on {addr} (STP at {stp}); `pisa su --halt` drains it"),
        None => println!("SDC serving (STP at {stp}); `pisa su --halt` drains it"),
    }
    let _server = service.run();
    println!("SDC drained after shutdown");
    ExitCode::SUCCESS
}

/// `pisa serve-stp`: the STP trust domain as its own process.
fn serve_stp(listen: &str, net: &NetFlags, durable: &DurableFlags) -> ExitCode {
    let mut opts = net_storm_opts(net);
    opts.durable = durable_opts(durable);
    if let Some(dir) = &durable.state_dir {
        println!(
            "serve-stp: {} {dir} (key directory only; sk_G is never written to disk)",
            if durable.resume {
                "resuming from"
            } else {
                "checkpointing to"
            },
        );
    }
    println!(
        "serve-stp: deriving system state for {} sessions (seed {})...",
        net.sessions, net.seed
    );
    let service = match pisa::StpService::bind(&opts, listen) {
        Ok(service) => service,
        Err(e) => {
            eprintln!("serve-stp failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match service.local_addr() {
        Some(addr) => println!("STP serving on {addr}; shutdown cascades from the SDC"),
        None => println!("STP serving; shutdown cascades from the SDC"),
    }
    let _server = service.run();
    println!("STP drained after shutdown");
    ExitCode::SUCCESS
}

/// `pisa trace`: golden-trace record/replay. `--record FILE` captures a
/// deterministic storm's full message trace; `--replay FILE` re-runs the
/// storm the file describes and fails if any frame diverges.
fn trace(record: Option<String>, replay: Option<String>, sessions: u32, seed: u64) -> ExitCode {
    use pisa::trace::{record_storm, replay_storm, StormTrace};

    if let Some(path) = record {
        println!("trace: recording a {sessions}-session storm (seed {seed})...");
        let (trace, outcomes) = match record_storm(sessions, seed) {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("trace record failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let encoded = match trace.encode() {
            Ok(bytes) => bytes,
            Err(e) => {
                eprintln!("trace encode failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(&path, &encoded) {
            eprintln!("failed to write trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
        let granted = outcomes.iter().filter(|o| o.granted == Some(true)).count();
        println!(
            "trace written to {path}: {} records, {} bytes ({granted}/{} granted)",
            trace.records.len(),
            encoded.len(),
            outcomes.len(),
        );
        ExitCode::SUCCESS
    } else if let Some(path) = replay {
        let file = match std::fs::read(&path) {
            Ok(file) => file,
            Err(e) => {
                eprintln!("failed to read trace {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let trace = match StormTrace::decode(&file) {
            Ok(trace) => trace,
            Err(e) => {
                eprintln!("trace {path} failed to decode: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "trace: replaying {} records ({} sessions, seed {})...",
            trace.records.len(),
            trace.sessions,
            trace.seed
        );
        match replay_storm(&trace) {
            Ok(report) if report.matches() => {
                println!(
                    "replay matched: all {} records byte-identical",
                    report.recorded
                );
                ExitCode::SUCCESS
            }
            Ok(report) => {
                eprintln!(
                    "replay DIVERGED: recorded {} records, replayed {}, first divergence at {}",
                    report.recorded,
                    report.replayed,
                    report
                        .divergence
                        .map_or_else(|| "end".to_owned(), |i| i.to_string()),
                );
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("replay failed to run: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        // The parser guarantees one mode; keep a defensive fallback.
        eprintln!("trace needs --record FILE or --replay FILE");
        ExitCode::FAILURE
    }
}

/// `pisa su`: the SU swarm against a live SDC service — `pisa storm`
/// over real sockets.
fn su_storm(
    sdc: &str,
    net: &NetFlags,
    halt: bool,
    verify: bool,
    metrics_out: Option<String>,
) -> ExitCode {
    let opts = net_storm_opts(net);
    let observing = metrics_out.is_some();
    if observing {
        pisa_obs::set_enabled(true);
        pisa_obs::reset();
    }
    println!(
        "su storm: {} sessions against {sdc}, faults/link: {:.0}% drop, {:.0}% dup, \
         {:.0}% reorder, {:.0}% corrupt",
        net.sessions,
        net.drop * 100.0,
        net.dup * 100.0,
        net.reorder * 100.0,
        net.corrupt * 100.0
    );

    let t = Instant::now();
    let report = match pisa::run_su_storm(&opts, sdc, halt) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("su storm failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = t.elapsed();

    for o in &report.outcomes {
        let stats = report
            .metrics
            .session(u64::from(o.su_id.0))
            .unwrap_or_default();
        println!(
            "  SU {:>3}: {:<9} after {} attempt(s)  (timeouts {}, rejects {})",
            o.su_id.0,
            match o.granted {
                Some(true) => "GRANTED",
                Some(false) => "DENIED",
                None => "EXHAUSTED",
            },
            o.attempts,
            stats.timeouts,
            stats.rejected,
        );
    }
    let f = report.metrics.fault_totals();
    let s = report.metrics.session_totals();
    println!(
        "\nsocket faults injected here: {} dropped, {} duplicated, {} reordered, \
         {} corrupted (+{} absorbed)",
        f.dropped, f.duplicated, f.reordered, f.corrupted, f.corrupt_dropped
    );
    println!(
        "sessions absorbed them with {} retries, {} timeouts, {} rejected messages",
        s.retries, s.timeouts, s.rejected
    );
    println!(
        "{}/{} sessions decided in {:.2} s ({:.1} KiB moved on this node)",
        report
            .outcomes
            .iter()
            .filter(|o| o.granted.is_some())
            .count(),
        report.outcomes.len(),
        elapsed.as_secs_f64(),
        report.metrics.total_bytes() as f64 / 1024.0
    );
    if halt {
        println!("halt sent: SDC and STP drain after this storm");
    }

    let mut verified_ok = true;
    if verify {
        println!("\nverify: replaying the storm on the in-memory engine...");
        match pisa::run_memory_baseline(&opts) {
            Ok(baseline) if baseline.decisions() == report.decisions() => {
                println!(
                    "verify: all {} decisions match the in-memory engine",
                    report.outcomes.len()
                );
            }
            Ok(baseline) => {
                verified_ok = false;
                eprintln!("verify FAILED: socket and in-memory decisions differ");
                for (net_d, mem_d) in report.decisions().iter().zip(baseline.decisions()) {
                    if *net_d != mem_d {
                        eprintln!(
                            "  {:?}: socket {:?} vs memory {:?}",
                            net_d.0, net_d.1, mem_d.1
                        );
                    }
                }
            }
            Err(e) => {
                verified_ok = false;
                eprintln!("verify FAILED: in-memory replay errored: {e}");
            }
        }
    }

    let mut exports_ok = true;
    if observing {
        pisa_obs::set_enabled(false);
        let obs_report = pisa_obs::report();
        if let Some(path) = metrics_out {
            let mut doc = obs_report.to_value();
            if let pisa_obs::json::Value::Obj(fields) = &mut doc {
                fields.push(("net".to_owned(), net_section(&report.metrics)));
            }
            exports_ok &= write_output("metrics report", &path, &doc.to_json());
        }
    }
    if report.all_completed() && verified_ok && exports_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Parsed `sim` options.
struct SimOpts {
    sus: u32,
    drop: f64,
    dup: f64,
    reorder: f64,
    corrupt: f64,
    seed: u64,
    retries: u32,
    timeout_ms: u64,
    real: bool,
    sweep: bool,
    metrics_out: Option<String>,
}

/// Deterministic discrete-event storm simulation: the `pisa storm`
/// scenario replayed on virtual time, bit-reproducible per seed.
fn sim(opts: SimOpts) -> ExitCode {
    use pisa::EngineConfig;
    use pisa_net::FaultPlan;
    use pisa_obs::json::Value;
    use pisa_sim::{run_sim_storm, run_sweep, Fidelity, SimConfig, SweepConfig};
    use std::time::Duration;

    let SimOpts {
        sus,
        drop,
        dup,
        reorder,
        corrupt,
        seed,
        retries,
        timeout_ms,
        real,
        sweep,
        metrics_out,
    } = opts;
    let plan = FaultPlan::none()
        .with_drop(drop)
        .with_duplicate(dup)
        .with_reorder(reorder)
        .with_corrupt(corrupt);
    let fidelity = if real {
        Fidelity::Real
    } else {
        Fidelity::Modeled
    };
    let engine = EngineConfig::default()
        .with_timeout(Duration::from_millis(timeout_ms))
        .with_max_retries(retries);
    let config = SimConfig::modeled(sus).with_plan(plan).with_engine(engine);
    let config = SimConfig { fidelity, ..config };

    if sweep {
        let sweep_cfg = SweepConfig {
            seed,
            session_counts: if sus >= 16 {
                vec![sus / 16, sus / 4, sus]
            } else {
                vec![sus]
            },
            fault_rates: vec![0.0, 0.05, 0.15, 0.3],
            seeds_per_cell: 8,
            fidelity,
            template: config,
            determinism_every: 16,
        };
        println!(
            "sim sweep: {} session counts x {} fault rates x {} seeds/cell ({})",
            sweep_cfg.session_counts.len(),
            sweep_cfg.fault_rates.len(),
            sweep_cfg.seeds_per_cell,
            fidelity.label(),
        );
        let t = Instant::now();
        let report = run_sweep(&sweep_cfg);
        let elapsed = t.elapsed();
        println!(
            "ran {} storms / {} sessions in {:.2} s; {} determinism double-runs",
            report.storms,
            report.sessions,
            elapsed.as_secs_f64(),
            report.determinism_checks,
        );
        for f in &report.failures {
            println!("  FAIL {}", f.to_line());
        }
        if report.clean() {
            println!("all storms satisfied every invariant");
        }
        let mut exports_ok = true;
        if let Some(path) = metrics_out {
            exports_ok &= write_output("sweep report", &path, &report.to_json());
        }
        if report.clean() && exports_ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    } else {
        println!(
            "sim storm: {sus} sessions ({}), faults/link: {:.0}% drop, {:.0}% dup, {:.0}% reorder, {:.0}% corrupt",
            fidelity.label(),
            drop * 100.0,
            dup * 100.0,
            reorder * 100.0,
            corrupt * 100.0
        );
        let t = Instant::now();
        let report = run_sim_storm(seed, &config);
        let elapsed = t.elapsed();
        println!(
            "{} granted, {} denied, {} undecided, {} unfinished ({} attempts total)",
            report.granted,
            report.denied,
            report.undecided,
            report.unfinished,
            report.attempts_total
        );
        println!(
            "virtual makespan {:.3} s; {} events and {:.1} KiB in {:.3} s wall ({:.0} events/s)",
            report.makespan_ns as f64 / 1e9,
            report.events,
            report.bytes as f64 / 1024.0,
            elapsed.as_secs_f64(),
            report.events as f64 / elapsed.as_secs_f64().max(1e-9),
        );
        println!("decisions digest: {:016x}", report.decisions_digest);
        let mut exports_ok = true;
        if let Some(path) = metrics_out {
            let doc = Value::object(vec![
                ("sim", report.to_value()),
                ("wall_ms", Value::from_f64(elapsed.as_secs_f64() * 1e3)),
            ]);
            exports_ok &= write_output("sim report", &path, &doc.to_json());
        }
        if report.all_terminal() && exports_ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    }
}

/// Per-phase protocol benchmark: runs `iters` full request rounds on an
/// in-process system with obs enabled and prints the phase table the
/// paper reports as Tables 2-3.
///
/// `pool > 0` precomputes that many `rⁿ` factors per party before each
/// iteration (the paper's §VI-A offline/online split) so the timed
/// phases pay one multiplication instead of one exponentiation per
/// entry; `threads > 1` fans the SDC sign test and STP key conversion
/// out over scoped workers.
fn bench(
    bits: usize,
    iters: usize,
    metrics: bool,
    metrics_out: Option<String>,
    pool: usize,
    threads: usize,
) -> ExitCode {
    use pisa_watch::WatchConfig;

    let mut rng = StdRng::seed_from_u64(0xb37c);
    let cfg = SystemConfig::new(WatchConfig::small_test(), bits, 64, 64);
    println!(
        "bench: {} channels x {} blocks, {bits}-bit keys, {iters} iteration(s), \
         pool {pool}, {threads} thread(s)\n",
        cfg.channels(),
        cfg.blocks()
    );

    let mut system = PisaSystem::setup(cfg, &mut rng);
    system.pu_update(0, BlockId(0), Some(Channel(0)), &mut rng);
    let su = system.register_su(BlockId(1), &mut rng);
    if pool > 0 {
        system.enable_pools(pool);
    }
    system.set_threads(threads);

    pisa_obs::set_enabled(true);
    pisa_obs::reset();
    let t = Instant::now();
    let mut request_bytes = 0u64;
    for i in 0..iters {
        // The offline phase: pools are topped up between rounds, outside
        // the per-phase spans, mirroring a deployment that precomputes
        // during idle time.
        system.refill_pools(&mut rng);
        let outcome = system.request(su, &[Channel(i % 2)], &mut rng);
        request_bytes = outcome.request_bytes as u64;
    }
    let elapsed = t.elapsed();
    pisa_obs::set_enabled(false);

    let report = pisa_obs::report();
    if metrics || metrics_out.is_some() {
        println!("per-phase breakdown (paper Tables 2-3):");
        print!("{}", report.render_table());
        println!();
    }
    println!(
        "{iters} round(s) in {:.2} s; request size {:.1} KiB; totals: \
         {} mod-exps, {} encryptions, {} decryptions, \
         {} mod-exps avoided, {} pool misses",
        elapsed.as_secs_f64(),
        request_bytes as f64 / 1024.0,
        report.totals.mod_exps,
        report.totals.encryptions,
        report.totals.decryptions,
        report.totals.mod_exps_avoided,
        report.totals.pool_misses,
    );
    if metrics_out.is_none() && !metrics {
        println!("(pass --metrics for the per-phase table, --metrics-out FILE for JSON)");
    }
    if let Some(path) = metrics_out {
        if !write_output("metrics report", &path, &report.to_json()) {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn demo() {
    let mut rng = StdRng::seed_from_u64(42);
    let config = SystemConfig::small_test();
    println!(
        "PISA demo: {} channels x {} blocks, {}-bit Paillier keys\n",
        config.channels(),
        config.blocks(),
        config.paillier_bits()
    );
    let mut system = PisaSystem::setup(config, &mut rng);
    system.pu_update(0, BlockId(12), Some(Channel(1)), &mut rng);
    println!("PU at block 12 tuned to a hidden channel");
    let su = system.register_su(BlockId(13), &mut rng);
    for ch in [Channel(1), Channel(0)] {
        let t = Instant::now();
        let outcome = system.request(su, &[ch], &mut rng);
        println!(
            "SU request on {ch}: {:<7}  ({} KiB request, {} B response, {:.0} ms)",
            if outcome.granted { "GRANTED" } else { "DENIED" },
            outcome.request_bytes / 1024,
            outcome.response_bytes,
            t.elapsed().as_secs_f64() * 1000.0,
        );
    }
    println!("\nonly the SU learned those decisions.");
}

fn keygen(bits: usize) {
    let mut rng = rand::rng();
    let t = Instant::now();
    let stp = pisa::StpServer::new(&mut rng, bits);
    let pk = stp.public_key();
    println!(
        "generated a {bits}-bit Paillier key pair in {:.2} s",
        t.elapsed().as_secs_f64()
    );
    println!("  public key (n):   {} bits", pk.key_bits());
    println!("  ciphertext width: {} bytes", pk.ciphertext_bytes());
    println!("  n = 0x{:x}…", pk.modulus() >> (bits.saturating_sub(64)));
    println!("(secret key held by the in-process STP; use the library API to persist keys)");
}

fn simulate(hours: usize, pus: usize, sus: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = SystemConfig::small_test();
    let watch_cfg = config.watch().clone();
    let channels = config.channels();
    let blocks = config.blocks();
    println!(
        "simulating {hours} h: {pus} PUs, {sus} SUs on {channels} channels x {blocks} blocks\n"
    );

    let mut system = PisaSystem::setup(config, &mut rng);
    let mut mirror = WatchSdc::new(watch_cfg.clone());
    let su_ids: Vec<_> = (0..sus)
        .map(|i| system.register_su(BlockId((i * 7 + 2) % blocks), &mut rng))
        .collect();

    let (mut grants, mut denials, mut mismatches) = (0usize, 0usize, 0usize);
    for hour in 0..hours {
        for pu in 0..pus as u64 {
            let block = BlockId(((pu as usize) * 5) % blocks);
            let tuned = if rng.next_u64() % 6 == 0 {
                None
            } else {
                Some(Channel((rng.next_u64() as usize) % channels))
            };
            system.pu_update(pu, block, tuned, &mut rng);
            mirror.pu_update(
                pu,
                match tuned {
                    Some(c) => PuInput::tuned(&watch_cfg, block, c),
                    None => PuInput::off(block),
                },
            );
        }
        for (i, &su) in su_ids.iter().enumerate() {
            let ch = Channel((rng.next_u64() as usize) % channels);
            let dbm = -45.0 + (rng.next_u64() % 35) as f64;
            let request =
                SuRequest::with_power_dbm(&watch_cfg, BlockId((i * 7 + 2) % blocks), &[ch], dbm);
            let outcome = system.request_with(su, &request, &mut rng).unwrap();
            if outcome.granted != mirror.process_request(&request).is_granted() {
                mismatches += 1;
            }
            if outcome.granted {
                grants += 1
            } else {
                denials += 1
            }
        }
        println!(
            "hour {hour}: {} active PUs, totals: {grants} granted / {denials} denied",
            mirror.active_pus()
        );
    }
    println!("\nencrypted/plaintext mismatches: {mismatches} (must be 0)");
    assert_eq!(mismatches, 0);
}

fn attack() {
    let mut rng = StdRng::seed_from_u64(1337);
    let cfg = SystemConfig::small_test();

    println!("== plaintext WATCH: total leak ==");
    let mut watch = WatchSdc::new(cfg.watch().clone());
    watch.pu_update(0, PuInput::tuned(cfg.watch(), BlockId(12), Channel(1)));
    for (ch, b) in adversary::infer_pu_channels(&watch) {
        println!("  SDC reads: viewer at {b} watches {ch}");
    }
    let request = SuRequest::with_power_dbm(cfg.watch(), BlockId(17), &[Channel(0)], 20.0);
    let f = request.f_matrix(cfg.watch());
    println!(
        "  SDC reads: SU at {} radiating {:.1} mW",
        adversary::infer_su_block(&f).unwrap(),
        adversary::infer_su_eirp_mw(cfg.watch(), &f).unwrap()
    );

    println!("\n== PISA: chance-level guessing ==");
    let stp = pisa::StpServer::new(&mut rng, cfg.paillier_bits());
    let mut su = pisa::SuClient::new(pisa::SuId(0), BlockId(17), &cfg, &mut rng);
    let runs = 30;
    let hits = (0..runs)
        .filter(|_| {
            let msg = su.build_request(&cfg, stp.public_key(), &[Channel(0)], &mut rng);
            adversary::guess_su_block_from_ciphertexts(&msg) == Some(BlockId(17))
        })
        .count();
    println!(
        "  block triangulation on ciphertexts: {hits}/{runs} (chance ≈ {:.1})",
        runs as f64 / cfg.blocks() as f64
    );
}

fn info() {
    let cfg = SystemConfig::paper();
    println!("Table I — Parameter Settings (ICDCS'17)");
    println!("  Number of PUs                         100");
    println!("  Number of blocks                      {}", cfg.blocks());
    println!("  Number of channels                    {}", cfg.channels());
    println!(
        "  Bit length of integer representation  {}",
        cfg.watch().quantizer().total_bits()
    );
    println!(
        "  Paillier modulus                      {} bits",
        cfg.paillier_bits()
    );
    println!(
        "  Blinding budget                       {} bits",
        cfg.blind_bits()
    );
    println!(
        "  Protection: SINR {} dB + redn {} dB -> X = {}",
        cfg.watch().params().tv_sinr_db,
        cfg.watch().params().redn_db,
        cfg.watch().params().x_integer()
    );
    println!(
        "  Request size at this scale            {:.1} MiB",
        (cfg.channels() * cfg.blocks() * cfg.paillier_bits() / 4) as f64 / (1024.0 * 1024.0)
    );
}
