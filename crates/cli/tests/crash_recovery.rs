//! Tier-2 crash-recovery gate (`--ignored`): boots the STP and SDC as
//! real processes with `--state-dir` checkpointing, drives a networked
//! SU storm, SIGKILLs the SDC mid-storm, restarts it with `--resume`,
//! and requires the completed storm's decisions to match the in-memory
//! baseline — the crash must be invisible to every SU.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SESSIONS: u32 = 16;
const SEED: u64 = 2017;

/// A spawned service that is killed (and its state dir removed) even
/// when an assertion fails mid-test.
struct Service {
    child: Child,
    name: &'static str,
}

impl Service {
    fn spawn(name: &'static str, args: &[&str]) -> Service {
        let child = Command::new(env!("CARGO_BIN_EXE_pisa"))
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        Service { child, name }
    }

    /// Reads stdout lines until the "serving on ADDR" banner appears,
    /// returning the bound address. Consumes the stdout pipe; the
    /// service keeps running detached from it.
    fn wait_for_addr(&mut self) -> String {
        let stdout = self
            .child
            .stdout
            .take()
            .unwrap_or_else(|| panic!("{} stdout not piped", self.name));
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        loop {
            line.clear();
            let n = reader
                .read_line(&mut line)
                .unwrap_or_else(|e| panic!("{} stdout died: {e}", self.name));
            if n == 0 {
                panic!("{} exited before its serving banner", self.name);
            }
            if let Some(rest) = line.split("serving on ").nth(1) {
                let addr = rest
                    .split_whitespace()
                    .next()
                    .unwrap_or_else(|| panic!("{}: malformed banner {line:?}", self.name))
                    .trim_end_matches(';')
                    .to_owned();
                // Keep draining on a detached thread so the service
                // never blocks (or panics) on a dead stdout pipe.
                std::thread::spawn(move || {
                    let mut sink = String::new();
                    while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
                        sink.clear();
                    }
                });
                return addr;
            }
        }
    }

    fn sigkill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.sigkill();
    }
}

fn storm_opts() -> pisa::NetStormOpts {
    let mut opts = pisa::NetStormOpts::new(SESSIONS, SEED);
    // Generous retry budget: the SUs must ride out the whole
    // kill-to-resume window (SDC process restart + checkpoint load)
    // on ordinary timeout/retry logic, with no special-case handling.
    opts.engine = pisa::EngineConfig::default()
        .with_timeout(Duration::from_millis(500))
        .with_max_retries(40);
    opts
}

#[test]
#[ignore = "tier-2: spawns real processes and SIGKILLs one mid-protocol"]
fn sigkilled_sdc_resumes_and_storm_decisions_match_baseline() {
    let state_dir = std::env::temp_dir().join(format!("pisa-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let state = state_dir.to_str().expect("utf-8 temp path").to_owned();
    let sessions = SESSIONS.to_string();
    let seed = SEED.to_string();

    let mut stp = Service::spawn(
        "serve-stp",
        &[
            "serve-stp",
            "--listen",
            "127.0.0.1:0",
            "--sessions",
            &sessions,
            "--seed",
            &seed,
        ],
    );
    let stp_addr = stp.wait_for_addr();

    // The SDC needs a *fixed* port so the resumed process comes back at
    // the address the SUs are already retrying against. Probe a few
    // candidates in case one is taken on this machine.
    let mut sdc = None;
    let mut sdc_addr = String::new();
    for probe in 0..8u32 {
        let port = 17000 + (std::process::id() + probe * 131) % 20000;
        let addr = format!("127.0.0.1:{port}");
        let mut candidate = Service::spawn(
            "serve-sdc",
            &[
                "serve-sdc",
                "--listen",
                &addr,
                "--stp",
                &stp_addr,
                "--sessions",
                &sessions,
                "--seed",
                &seed,
                "--state-dir",
                &state,
                "--checkpoint-every",
                "2",
            ],
        );
        // A failed bind exits before the banner; give it a beat.
        std::thread::sleep(Duration::from_millis(300));
        match candidate.child.try_wait() {
            Ok(None) => {
                sdc_addr = candidate.wait_for_addr();
                sdc = Some(candidate);
                break;
            }
            _ => continue,
        }
    }
    let mut sdc = sdc.expect("no free port for the SDC in 8 probes");

    // The storm runs on its own thread; this thread plays the chaos
    // monkey, SIGKILLing the SDC as soon as its first checkpoint lands.
    let storm_sdc_addr = sdc_addr.clone();
    let storm = std::thread::spawn(move || {
        let opts = storm_opts();
        pisa::run_su_storm(&opts, &storm_sdc_addr, true)
    });

    let ckpt = state_dir.join("sdc.ckpt");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !ckpt.exists() {
        assert!(
            Instant::now() < deadline,
            "SDC wrote no checkpoint within 30 s"
        );
        assert!(!storm.is_finished(), "storm finished before any checkpoint");
        std::thread::sleep(Duration::from_millis(20));
    }
    sdc.sigkill();

    // Resurrection: same port, same state dir, --resume. The SUs'
    // retries are hammering the dead address this whole time.
    let mut sdc2 = Service::spawn(
        "serve-sdc --resume",
        &[
            "serve-sdc",
            "--listen",
            &sdc_addr,
            "--stp",
            &stp_addr,
            "--sessions",
            &sessions,
            "--seed",
            &seed,
            "--state-dir",
            &state,
            "--checkpoint-every",
            "2",
            "--resume",
        ],
    );
    let resumed_addr = sdc2.wait_for_addr();
    assert_eq!(resumed_addr, sdc_addr, "resumed SDC must rebind its port");

    let report = storm
        .join()
        .expect("storm thread panicked")
        .expect("storm failed to complete against the resumed SDC");
    assert!(
        report.all_completed(),
        "every session must decide across the crash: {:?}",
        report.outcomes
    );

    let baseline = pisa::run_memory_baseline(&storm_opts()).expect("in-memory baseline");
    assert_eq!(
        report.decisions(),
        baseline.decisions(),
        "crash + resume changed a grant/deny decision"
    );

    let _ = std::fs::remove_dir_all(&state_dir);
}
