//! The Paillier cryptosystem (Paillier, EUROCRYPT'99) with the
//! homomorphic operations used by PISA (paper Figure 2).
//!
//! * encryption `E(m, r) = gᵐ · rⁿ mod n²` with the standard `g = n + 1`
//!   optimization (`gᵐ = 1 + mn mod n²`, no exponentiation needed);
//! * decryption `m = L(c^λ mod n²) · μ mod n`, plus a CRT-accelerated
//!   variant that works modulo `p²` and `q²` separately;
//! * homomorphic addition ⊕, subtraction ⊖ and scalar multiplication ⊗
//!   over ciphertexts;
//! * re-randomization `c · rⁿ mod n²` — the trick the paper uses to
//!   refresh a cached request matrix in ~1/20 of full encryption time.
//!
//! Plaintexts are signed `Ibig` values encoded by centered lift: the
//! decoded message `m` satisfies `-n/2 < m <= n/2`, which is what lets the
//! STP read the *sign* of a blinded interference entry.

mod keys;
mod ops;
mod pool;

pub use keys::{PaillierKeyPair, PaillierPublicKey, PaillierSecretKey, MIN_KEY_BITS};
pub use ops::{Ciphertext, Randomizer};
pub use pool::{PoolStats, RandomizerPool, RefillHandle};

#[cfg(test)]
mod tests {
    use super::*;
    use pisa_bigint::{Ibig, Ubig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5eed)
    }

    fn small_keys() -> PaillierKeyPair {
        PaillierKeyPair::generate(&mut rng(), 256)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let kp = small_keys();
        let mut r = rng();
        for m in [-1_000_000i64, -1, 0, 1, 7, 1 << 60] {
            let m = Ibig::from(m);
            let c = kp.public().encrypt(&m, &mut r);
            assert_eq!(kp.secret().decrypt(&c), m, "m = {m}");
        }
    }

    #[test]
    fn ciphertexts_are_randomized() {
        let kp = small_keys();
        let mut r = rng();
        let m = Ibig::from(5i64);
        let c1 = kp.public().encrypt(&m, &mut r);
        let c2 = kp.public().encrypt(&m, &mut r);
        assert_ne!(c1, c2, "two encryptions of the same value must differ");
        assert_eq!(kp.secret().decrypt(&c1), kp.secret().decrypt(&c2));
    }

    #[test]
    fn homomorphic_add_sub() {
        let kp = small_keys();
        let mut r = rng();
        let pk = kp.public();
        let cases = [(3i64, 4i64), (-3, 4), (3, -4), (-3, -4), (0, 0)];
        for (a, b) in cases {
            let ca = pk.encrypt(&Ibig::from(a), &mut r);
            let cb = pk.encrypt(&Ibig::from(b), &mut r);
            assert_eq!(kp.secret().decrypt(&pk.add(&ca, &cb)), Ibig::from(a + b));
            assert_eq!(
                kp.secret().decrypt(&pk.sub(&ca, &cb).unwrap()),
                Ibig::from(a - b)
            );
        }
    }

    #[test]
    fn homomorphic_scalar_mul() {
        let kp = small_keys();
        let mut r = rng();
        let pk = kp.public();
        for (m, k) in [(5i64, 3i64), (5, -3), (-5, 3), (-5, -3), (7, 0), (0, 9)] {
            let c = pk.encrypt(&Ibig::from(m), &mut r);
            let ck = pk.scalar_mul(&c, &Ibig::from(k)).unwrap();
            assert_eq!(kp.secret().decrypt(&ck), Ibig::from(m * k), "{m} * {k}");
        }
    }

    #[test]
    fn rerandomize_preserves_plaintext_changes_ciphertext() {
        let kp = small_keys();
        let mut r = rng();
        let c = kp.public().encrypt(&Ibig::from(123i64), &mut r);
        let c2 = kp.public().rerandomize(&c, &mut r);
        assert_ne!(c, c2);
        assert_eq!(kp.secret().decrypt(&c2), Ibig::from(123i64));
    }

    #[test]
    fn crt_decrypt_matches_standard() {
        let kp = small_keys();
        let mut r = rng();
        for m in [-99i64, 0, 42, 1 << 40] {
            let c = kp.public().encrypt(&Ibig::from(m), &mut r);
            assert_eq!(
                kp.secret().decrypt(&c),
                kp.secret().decrypt_standard(&c),
                "m = {m}"
            );
        }
    }

    #[test]
    fn negative_encoding_centered_lift() {
        let kp = small_keys();
        let mut r = rng();
        // A value near -n/2 still decodes correctly.
        let n = kp.public().modulus().clone();
        let near_half = Ibig::from((&n >> 1) - Ubig::from(3u64));
        let c = kp.public().encrypt(&near_half, &mut r);
        assert_eq!(kp.secret().decrypt(&c), near_half);
        let neg = -near_half.clone() + Ibig::from(1i64);
        let c = kp.public().encrypt(&neg, &mut r);
        assert_eq!(kp.secret().decrypt(&c), neg);
    }

    #[test]
    fn zero_sum_of_inverses() {
        // enc(x) ⊖ enc(x) decrypts to 0 — the license-release identity.
        let kp = small_keys();
        let mut r = rng();
        let c = kp.public().encrypt(&Ibig::from(777i64), &mut r);
        let diff = kp.public().sub(&c, &c).unwrap();
        assert_eq!(kp.secret().decrypt(&diff), Ibig::zero());
    }

    #[test]
    fn fast_randomizers_preserve_decryption() {
        let kp = small_keys();
        let mut r = rng();
        let pk = kp.public();
        assert!(!pk.fast_randomizers_enabled());
        pk.enable_fast_randomizers(&mut r);
        assert!(pk.fast_randomizers_enabled());
        // Clones share the cached table.
        assert!(pk.clone().fast_randomizers_enabled());
        let m = Ibig::from(99i64);
        let c = pk.encrypt(&m, &mut r);
        let c2 = pk.rerandomize(&c, &mut r);
        assert_ne!(c, c2, "fast factors still randomize");
        assert_eq!(kp.secret().decrypt(&c2), m);
        let f = pk.precompute_randomizer(&mut r);
        let c3 = pk.encrypt_with_randomizer(&m, &f);
        assert_eq!(kp.secret().decrypt(&c3), m);
    }

    #[test]
    fn different_key_sizes() {
        let mut r = rng();
        for bits in [256usize, 384, 512] {
            let kp = PaillierKeyPair::generate(&mut r, bits);
            assert_eq!(kp.public().modulus().bit_len(), bits);
            let c = kp.public().encrypt(&Ibig::from(31337i64), &mut r);
            assert_eq!(kp.secret().decrypt(&c), Ibig::from(31337i64));
        }
    }
}
