//! Paillier key generation, encryption and decryption.

use super::ops::{Ciphertext, Randomizer};
use crate::error::CryptoError;
use pisa_bigint::modular::{gcd, lcm, mod_inverse, FixedBasePow, MontCtx};
use pisa_bigint::random::{random_bits, random_coprime};
use pisa_bigint::zeroize::Zeroize;
use pisa_bigint::{prime, Ibig, Sign, Ubig};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Minimum supported modulus size in bits (small enough to admit
/// classroom test vectors; production keys are 2048 bits per the paper).
pub const MIN_KEY_BITS: usize = 16;

/// Cached fixed-base context for DJN-style fast randomizers: a public
/// `h_n = (-y²)^n mod n²` with its precomputed window table, plus the
/// short-exponent width. Built once per key by
/// [`PaillierPublicKey::enable_fast_randomizers`].
struct FastRandomizer {
    /// Fixed-base table over `h_n`.
    table: FixedBasePow,
    /// Bit width of the short random exponent `x`.
    exp_bits: usize,
}

impl fmt::Debug for FastRandomizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The table itself already redacts; echo only the parameters.
        write!(f, "FastRandomizer {{ exp_bits: {} }}", self.exp_bits)
    }
}

impl Drop for FastRandomizer {
    fn drop(&mut self) {
        // `h_n` is public under the DJN assumption, but the table is
        // precomputed key-adjacent state: wipe it like the pools.
        self.table.zeroize();
    }
}

/// A Paillier public key `(n, g = n + 1)` with precomputed Montgomery
/// context for `n²`.
///
/// All homomorphic operations (paper Figure 2) live here; see
/// [`PaillierPublicKey::add`], [`sub`](PaillierPublicKey::sub) and
/// [`scalar_mul`](PaillierPublicKey::scalar_mul).
#[derive(Debug, Clone)]
pub struct PaillierPublicKey {
    n: Ubig,
    n_squared: Ubig,
    half_n: Ubig,
    ctx_n2: MontCtx,
    /// Opt-in fast-randomizer context, shared across clones so a key
    /// cached inside matrices and pools reuses one table.
    fast_rand: Arc<OnceLock<FastRandomizer>>,
}

impl PartialEq for PaillierPublicKey {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n
    }
}

impl Eq for PaillierPublicKey {}

impl PaillierPublicKey {
    /// Reconstructs a public key from its modulus.
    ///
    /// # Panics
    ///
    /// Panics if `n` is even or smaller than [`MIN_KEY_BITS`].
    pub fn from_modulus(n: Ubig) -> Self {
        assert!(
            n.bit_len() >= MIN_KEY_BITS,
            "modulus below minimum key size"
        );
        assert!(n.is_odd(), "Paillier modulus must be odd");
        let n_squared = n.square();
        // pisa-lint: allow(panic-freedom): n is asserted odd just above, so n²
        // is odd and MontCtx::new cannot fail; this is key setup, not a frame path.
        let ctx_n2 = MontCtx::new(&n_squared).expect("odd n² modulus");
        let half_n = &n >> 1;
        PaillierPublicKey {
            n,
            n_squared,
            half_n,
            ctx_n2,
            fast_rand: Arc::new(OnceLock::new()),
        }
    }

    /// The modulus `n` defining the plaintext space `Z_n`.
    pub fn modulus(&self) -> &Ubig {
        &self.n
    }

    /// `n²`, the ciphertext-space modulus.
    pub fn modulus_squared(&self) -> &Ubig {
        &self.n_squared
    }

    /// Modulus size in bits (the paper's `|n| = 2048`).
    pub fn key_bits(&self) -> usize {
        self.n.bit_len()
    }

    /// Size of one serialized ciphertext in bytes (`2·|n|/8`).
    pub fn ciphertext_bytes(&self) -> usize {
        self.n_squared.bit_len().div_ceil(8)
    }

    /// Encodes a signed plaintext into `Z_n` by centered lift.
    ///
    /// # Panics
    ///
    /// Panics if `|m| > n/2` (the value would alias another residue).
    pub fn encode(&self, m: &Ibig) -> Ubig {
        assert!(
            m.magnitude() <= &self.half_n,
            "plaintext magnitude exceeds n/2: cannot center-lift"
        );
        m.rem_euclid(&self.n)
    }

    /// Decodes a residue in `Z_n` back to the signed domain
    /// `(-n/2, n/2]`.
    pub fn decode(&self, v: Ubig) -> Ibig {
        if v > self.half_n {
            Ibig::from_sign_magnitude(Sign::Negative, &self.n - &v)
        } else {
            Ibig::from(v)
        }
    }

    /// Encrypts a signed plaintext with a fresh random factor.
    ///
    /// # Panics
    ///
    /// Panics if `|m| > n/2`.
    pub fn encrypt<R: Rng + ?Sized>(&self, m: &Ibig, rng: &mut R) -> Ciphertext {
        // `random_coprime` samples until gcd(r, n) = 1, so the unit
        // precondition of `raw_encrypt` holds by construction.
        let r = random_coprime(rng, &self.n);
        self.raw_encrypt(m, &r)
    }

    /// Encrypts with an explicit random factor `r` (deterministic; used
    /// by tests and by the re-randomization benchmarks).
    ///
    /// Fails with [`CryptoError::MalformedCiphertext`] unless
    /// `r ∈ Z_n*`: `r = 0`, `r ≥ n` sharing a factor with `n`, or any
    /// other non-unit would produce a ciphertext that is not a unit
    /// modulo `n²` — undecryptable, and poison for every later
    /// `sub`/`scalar_mul`/`invert` that touches it.
    pub fn encrypt_with_r(&self, m: &Ibig, r: &Ubig) -> Result<Ciphertext, CryptoError> {
        // gcd(0, n) = n, so this single check also rejects r = 0.
        if !gcd(r, &self.n).is_one() {
            return Err(CryptoError::MalformedCiphertext);
        }
        Ok(self.raw_encrypt(m, r))
    }

    /// Shared encryption core; callers must guarantee `r ∈ Z_n*`.
    ///
    /// Performs one exponentiation (`rⁿ`) and two multiplications (the
    /// `m·n` product inside `gᵐ` and the final `gᵐ · rⁿ`), chained in
    /// Montgomery form so the product costs no extra round trip.
    fn raw_encrypt(&self, m: &Ibig, r: &Ubig) -> Ciphertext {
        let encoded = self.encode(m);
        // g^m = (n+1)^m = 1 + m·n (mod n²)
        let g_m = (Ubig::one() + &encoded * &self.n) % &self.n_squared;
        obs_count!(ModExp);
        obs_count!(ModMul);
        obs_count!(ModMul);
        obs_count!(Encrypt);
        let mut s = self.ctx_n2.scratch();
        let reduced;
        let r = if r < &self.n_squared {
            r
        } else {
            reduced = r % &self.n_squared;
            &reduced
        };
        let r_m = self.ctx_n2.to_mont(r, &mut s);
        let rn_m = self.ctx_n2.pow_mont(&r_m, &self.n, &mut s);
        let gm_m = self.ctx_n2.to_mont(&g_m, &mut s);
        let c_m = self.ctx_n2.mont_mul(&gm_m, &rn_m, &mut s);
        Ciphertext::from_raw(self.ctx_n2.from_mont(&c_m, &mut s))
    }

    /// Encrypts with a precomputed re-randomization factor — the online
    /// half of the paper's §VI-A offline/online split. Two modular
    /// multiplications, no exponentiation: `(1 + m·n) · rⁿ mod n²`.
    ///
    /// Each factor must be used for at most one ciphertext; reuse links
    /// the ciphertexts it produced.
    pub fn encrypt_with_randomizer(&self, m: &Ibig, factor: &Randomizer) -> Ciphertext {
        let encoded = self.encode(m);
        let g_m = (Ubig::one() + &encoded * &self.n) % &self.n_squared;
        obs_count!(ModMul);
        obs_count!(ModMul);
        obs_count!(Encrypt);
        Ciphertext::from_raw((&g_m * &factor.0) % &self.n_squared)
    }

    /// Switches this key (and every clone sharing its cache) to
    /// DJN-style fast randomizers: re-randomization factors become
    /// `h_nˣ mod n²` for `h_n = (-y²)ⁿ` with a fresh secret `y` and a
    /// *short* random exponent `x`, driven through a precomputed
    /// fixed-base table over `h_n`.
    ///
    /// This replaces the full-width `rⁿ` exponentiation (one exponent
    /// bit per modulus bit) with `⌈exp_bits/4⌉` multiplications — about
    /// an order of magnitude fewer at 512-bit keys — at the cost of the
    /// Damgård–Jurik–Nielsen assumption that powers of `h_n` with short
    /// exponents are indistinguishable from uniform `n`-th residues
    /// (§4.2 of their paper). Factors remain valid `n`-th residues, so
    /// decryption and the homomorphic identities are unaffected.
    ///
    /// **Opt-in** precisely because it is a strictly stronger assumption
    /// than Paillier's DCRA; nothing enables it by default. Idempotent:
    /// later calls keep the first table.
    pub fn enable_fast_randomizers<R: Rng + ?Sized>(&self, rng: &mut R) {
        self.fast_rand.get_or_init(|| {
            let y = random_coprime(rng, &self.n);
            // h = -y² mod n, a quadratic non-residue with Jacobi symbol 1
            // for Blum-integer n.
            let h = &self.n - &((&y * &y) % &self.n);
            let h_n = self.ctx_n2.pow(&h, &self.n);
            let exp_bits = fast_exp_bits(self.n.bit_len());
            let table = FixedBasePow::new(&self.ctx_n2, &h_n, exp_bits)
                // pisa-lint: allow(panic-freedom): exp_bits ≥ 160 by
                // construction, so the table constructor cannot reject
                // it; key setup, not a frame path.
                .expect("non-zero exponent width");
            FastRandomizer { table, exp_bits }
        });
    }

    /// True once [`enable_fast_randomizers`](Self::enable_fast_randomizers)
    /// has run on this key or any clone sharing its cache.
    pub fn fast_randomizers_enabled(&self) -> bool {
        self.fast_rand.get().is_some()
    }

    /// Re-randomizes a ciphertext: multiplies by `rⁿ` for fresh `r`,
    /// changing the ciphertext without changing the plaintext.
    ///
    /// This online variant computes `rⁿ` on the spot (one
    /// exponentiation). The paper's 221 s → 11 s request-refresh trick
    /// (§VI-A) precomputes the `rⁿ` factors offline and pays only one
    /// multiplication per entry online — see
    /// [`precompute_randomizer`](Self::precompute_randomizer) and
    /// [`rerandomize_precomputed`](Self::rerandomize_precomputed).
    pub fn rerandomize<R: Rng + ?Sized>(&self, c: &Ciphertext, rng: &mut R) -> Ciphertext {
        let factor = self.precompute_randomizer(rng);
        self.rerandomize_precomputed(c, &factor)
    }

    /// Offline phase of request refresh: samples `r ∈ Z_n*` and computes
    /// the re-randomization factor `rⁿ mod n²` (the expensive
    /// exponentiation, done ahead of time).
    ///
    /// With [fast randomizers](Self::enable_fast_randomizers) enabled the
    /// factor is `h_nˣ` for a short random `x` instead — the same
    /// exponentiation class, an order of magnitude cheaper.
    pub fn precompute_randomizer<R: Rng + ?Sized>(&self, rng: &mut R) -> Randomizer {
        obs_count!(ModExp);
        if let Some(fast) = self.fast_rand.get() {
            let x = random_bits(rng, fast.exp_bits);
            return Randomizer(fast.table.pow(&x));
        }
        let r = random_coprime(rng, &self.n);
        Randomizer(self.ctx_n2.pow(&r, &self.n))
    }

    /// Online phase of request refresh: one modular multiplication —
    /// "the same amount of time as homomorphic addition" (§VI-A).
    ///
    /// Each factor must be used for at most one ciphertext; reuse would
    /// correlate the refreshed entries.
    pub fn rerandomize_precomputed(&self, c: &Ciphertext, factor: &Randomizer) -> Ciphertext {
        obs_count!(Rerandomize);
        obs_count!(ModMul);
        Ciphertext::from_raw((c.as_raw() * &factor.0) % &self.n_squared)
    }

    /// Homomorphic addition ⊕: `D(add(E(a), E(b))) = a + b`.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        obs_count!(ModMul);
        Ciphertext::from_raw((a.as_raw() * b.as_raw()) % &self.n_squared)
    }

    /// Homomorphic subtraction ⊖: `D(sub(E(a), E(b))) = a - b`.
    ///
    /// Fails with [`CryptoError::MalformedCiphertext`] if `b` is not a
    /// unit modulo `n²` — only possible for adversarial ciphertexts, so
    /// the error must reach the protocol layer instead of panicking the
    /// decryption oracle.
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, CryptoError> {
        let b_inv = self.invert(b)?;
        obs_count!(ModMul);
        Ok(Ciphertext::from_raw(
            (a.as_raw() * &b_inv) % &self.n_squared,
        ))
    }

    /// Homomorphic scalar multiplication ⊗: `D(scalar_mul(E(m), k)) = k·m`.
    ///
    /// Negative scalars go through the ciphertext inverse, exactly like ⊖,
    /// and fail the same way on non-unit ciphertexts.
    ///
    /// `k = ±1` short-circuits the exponentiation ladder entirely — the
    /// sign-test phases multiply by the public `±ε` sign flips constantly,
    /// and `c¹` is `c`. The scalar is public in every protocol use
    /// (blinding coefficients are the *SDC's own* secrets applied to
    /// ciphertexts it forwards), so the shortcut leaks nothing to the
    /// parties the blinding defends against.
    pub fn scalar_mul(&self, c: &Ciphertext, k: &Ibig) -> Result<Ciphertext, CryptoError> {
        if k.magnitude().is_one() {
            obs_count!(ModExpAvoided);
            if k.is_negative() {
                return Ok(Ciphertext::from_raw(self.invert(c)?));
            }
            return Ok(c.clone());
        }
        obs_count!(ModExp);
        let powed = self.ctx_n2.pow(c.as_raw(), k.magnitude());
        if k.is_negative() {
            let inv = pisa_bigint::modular::mod_inverse(&powed, &self.n_squared)
                .ok_or(CryptoError::MalformedCiphertext)?;
            Ok(Ciphertext::from_raw(inv))
        } else {
            Ok(Ciphertext::from_raw(powed))
        }
    }

    /// Encryption of zero with `r = 1`; the homomorphic identity.
    pub fn trivial_zero(&self) -> Ciphertext {
        Ciphertext::from_raw(Ubig::one())
    }

    /// Encryption of `m` with `r = 1` — deterministic, **not**
    /// semantically secure; used only for public constants such as the
    /// paper's matrix `E` (maximum SU EIRP is public data).
    pub fn encrypt_public_constant(&self, m: &Ibig) -> Ciphertext {
        obs_count!(Encrypt);
        obs_count!(ModMul);
        let encoded = self.encode(m);
        Ciphertext::from_raw((Ubig::one() + &encoded * &self.n) % &self.n_squared)
    }

    fn invert(&self, c: &Ciphertext) -> Result<Ubig, CryptoError> {
        mod_inverse(c.as_raw(), &self.n_squared).ok_or(CryptoError::MalformedCiphertext)
    }
}

/// A Paillier secret key `(λ, μ)` with CRT acceleration data.
///
/// Tagged `pisa_secret`: pisa-lint enforces that this type never derives
/// `Debug`/`Serialize`, redacts in its manual `Debug`, and wipes itself
/// on drop.
#[doc(alias = "pisa_secret")]
#[derive(Clone)]
pub struct PaillierSecretKey {
    pk: PaillierPublicKey,
    lambda: Ubig,
    mu: Ubig,
    crt: CrtParams,
}

impl fmt::Debug for PaillierSecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PaillierSecretKey {{ n: {} bits, lambda: <redacted>, mu: <redacted>, \
             crt: <redacted> }}",
            self.pk.key_bits()
        )
    }
}

impl Drop for PaillierSecretKey {
    fn drop(&mut self) {
        self.lambda.zeroize();
        self.mu.zeroize();
        // `pk` is public and `crt` wipes itself via its own Drop.
    }
}

/// CRT acceleration data — contains the prime factorization of `n`.
#[doc(alias = "pisa_secret")]
#[derive(Clone)]
struct CrtParams {
    p: Ubig,
    q: Ubig,
    ctx_p2: MontCtx,
    ctx_q2: MontCtx,
    /// `hp = L_p(g^(p-1) mod p²)⁻¹ mod p`
    hp: Ubig,
    /// `hq = L_q(g^(q-1) mod q²)⁻¹ mod q`
    hq: Ubig,
    /// `q⁻¹ mod p`
    q_inv_p: Ubig,
}

impl fmt::Debug for CrtParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("CrtParams { <redacted> }")
    }
}

impl Drop for CrtParams {
    fn drop(&mut self) {
        self.p.zeroize();
        self.q.zeroize();
        self.ctx_p2.zeroize();
        self.ctx_q2.zeroize();
        self.hp.zeroize();
        self.hq.zeroize();
        self.q_inv_p.zeroize();
    }
}

impl PaillierSecretKey {
    /// The matching public key.
    pub fn public(&self) -> &PaillierPublicKey {
        &self.pk
    }

    /// Decrypts via the CRT fast path (the default; ~4× standard
    /// decryption).
    pub fn decrypt(&self, c: &Ciphertext) -> Ibig {
        // CRT decryption is two half-size exponentiations.
        obs_count!(ModExp);
        obs_count!(ModExp);
        obs_count!(Decrypt);
        let crt = &self.crt;
        let mp = {
            let cp = crt.ctx_p2.pow(c.as_raw(), &(&crt.p - &Ubig::one()));
            let lp = l_function(&cp, &crt.p);
            (&lp * &crt.hp) % &crt.p
        };
        let mq = {
            let cq = crt.ctx_q2.pow(c.as_raw(), &(&crt.q - &Ubig::one()));
            let lq = l_function(&cq, &crt.q);
            (&lq * &crt.hq) % &crt.q
        };
        // CRT combine: m = mq + q · ((mp − mq) · q⁻¹ mod p)
        let diff = (Ibig::from(mp) - Ibig::from(mq.clone())).rem_euclid(&crt.p);
        let m = (&mq + &(&crt.q * &((&diff * &crt.q_inv_p) % &crt.p))) % &self.pk.n;
        self.pk.decode(m)
    }

    /// Decrypts via the textbook formula `m = L(c^λ mod n²)·μ mod n`.
    ///
    /// Kept public for the CRT-vs-standard ablation benchmark.
    pub fn decrypt_standard(&self, c: &Ciphertext) -> Ibig {
        obs_count!(ModExp);
        obs_count!(Decrypt);
        let c_lambda = self.pk.ctx_n2.pow(c.as_raw(), &self.lambda);
        let l = l_function(&c_lambda, &self.pk.n);
        let m = (&l * &self.mu) % &self.pk.n;
        self.pk.decode(m)
    }
}

/// Short-exponent width for DJN fast randomizers: a quarter of the key
/// width, floored at 160 bits. Comfortably above twice the security
/// level at every supported key size (2048-bit keys → 512-bit exponents
/// against 112-bit security), i.e. conservative relative to the bound in
/// the DJN paper.
fn fast_exp_bits(key_bits: usize) -> usize {
    (key_bits / 4).max(160)
}

/// `L(x) = (x - 1) / d` — exact division by construction for honest
/// ciphertexts.
///
/// An adversarial ciphertext divisible by the prime behind `d` makes the
/// inner power `x` come out zero; `x - 1` would then underflow and panic,
/// turning STP decryption into a remotely triggerable panic oracle.
/// Mapping `x = 0` to `L = 0` keeps the function total — the garbage
/// plaintext that results is handled (and rejected) downstream.
fn l_function(x: &Ubig, d: &Ubig) -> Ubig {
    if x.is_zero() {
        return Ubig::zero();
    }
    (x - &Ubig::one()) / d
}

/// A freshly generated Paillier key pair.
///
/// Tagged `pisa_secret`; the wipe-on-drop lives in the inner
/// [`PaillierSecretKey`], which is this type's only field.
#[doc(alias = "pisa_secret")]
#[derive(Clone)]
pub struct PaillierKeyPair {
    sk: PaillierSecretKey,
}

impl fmt::Debug for PaillierKeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PaillierKeyPair {{ n: {} bits, sk: <redacted> }}",
            self.public().key_bits()
        )
    }
}

impl PaillierKeyPair {
    /// Generates a key pair with a modulus of exactly `bits` bits.
    ///
    /// The paper's evaluation uses `bits = 2048` (112-bit security per
    /// NIST SP 800-57); tests use smaller sizes.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 64` or `bits` is odd.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Self {
        assert!(bits >= MIN_KEY_BITS, "key size below {MIN_KEY_BITS} bits");
        assert!(bits.is_multiple_of(2), "key size must be even");
        loop {
            let p = prime::gen_prime(rng, bits / 2);
            let q = prime::gen_prime(rng, bits / 2);
            if p == q {
                continue;
            }
            let n = &p * &q;
            if n.bit_len() != bits {
                continue;
            }
            if let Some(kp) = Self::from_primes(p, q) {
                return kp;
            }
        }
    }

    /// Builds a key pair from explicit primes; `None` if the primes are
    /// unusable (`gcd(n, λ) ≠ 1` or `p == q`).
    pub fn from_primes(p: Ubig, q: Ubig) -> Option<Self> {
        if p == q {
            return None;
        }
        let n = &p * &q;
        let lambda = lcm(&(&p - &Ubig::one()), &(&q - &Ubig::one()));
        if !pisa_bigint::modular::gcd(&n, &lambda).is_one() {
            return None;
        }
        let pk = PaillierPublicKey::from_modulus(n.clone());

        // μ = L(g^λ mod n²)⁻¹ mod n; with g = n+1, g^λ = 1 + λn (mod n²),
        // so L(g^λ) = λ mod n.
        let mu = mod_inverse(&(&lambda % &n), &n)?;

        let p_squared = p.square();
        let q_squared = q.square();
        let ctx_p2 = MontCtx::new(&p_squared)?;
        let ctx_q2 = MontCtx::new(&q_squared)?;
        let hp = {
            let g = (Ubig::one() + &n) % &p_squared;
            let powed = ctx_p2.pow(&g, &(&p - &Ubig::one()));
            mod_inverse(&l_function(&powed, &p), &p)?
        };
        let hq = {
            let g = (Ubig::one() + &n) % &q_squared;
            let powed = ctx_q2.pow(&g, &(&q - &Ubig::one()));
            mod_inverse(&l_function(&powed, &q), &q)?
        };
        let q_inv_p = mod_inverse(&q, &p)?;

        Some(PaillierKeyPair {
            sk: PaillierSecretKey {
                pk,
                lambda,
                mu,
                crt: CrtParams {
                    p,
                    q,
                    ctx_p2,
                    ctx_q2,
                    hp,
                    hq,
                    q_inv_p,
                },
            },
        })
    }

    /// The public half.
    pub fn public(&self) -> &PaillierPublicKey {
        self.sk.public()
    }

    /// The secret half.
    pub fn secret(&self) -> &PaillierSecretKey {
        &self.sk
    }

    /// Consumes the pair, returning the secret key (which contains the
    /// public key).
    pub fn into_secret(self) -> PaillierSecretKey {
        self.sk
    }
}

/// Serialized form of a public key (just the modulus).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PublicKeyBytes {
    /// Big-endian modulus bytes.
    pub n: Ubig,
}

impl From<&PaillierPublicKey> for PublicKeyBytes {
    fn from(pk: &PaillierPublicKey) -> Self {
        PublicKeyBytes { n: pk.n.clone() }
    }
}

impl From<PublicKeyBytes> for PaillierPublicKey {
    fn from(b: PublicKeyBytes) -> Self {
        PaillierPublicKey::from_modulus(b.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_primes_known_small() {
        // p = 293, q = 433 (classic Paillier test vector primes)
        let kp = PaillierKeyPair::from_primes(Ubig::from(293u64), Ubig::from(433u64))
            .expect("valid primes");
        assert_eq!(kp.public().modulus(), &Ubig::from(293u64 * 433));
        let m = Ibig::from(521i64);
        let c = kp
            .public()
            .encrypt_with_r(&m, &Ubig::from(7u64))
            .expect("7 is a unit mod n");
        assert_eq!(kp.secret().decrypt(&c), m);
        assert_eq!(kp.secret().decrypt_standard(&c), m);
    }

    #[test]
    fn equal_primes_rejected() {
        assert!(PaillierKeyPair::from_primes(Ubig::from(293u64), Ubig::from(293u64)).is_none());
    }

    #[test]
    fn generated_modulus_exact_bits() {
        let mut rng = StdRng::seed_from_u64(3);
        let kp = PaillierKeyPair::generate(&mut rng, 128);
        assert_eq!(kp.public().key_bits(), 128);
    }

    #[test]
    #[should_panic(expected = "center-lift")]
    fn oversized_plaintext_panics() {
        let kp = PaillierKeyPair::from_primes(Ubig::from(293u64), Ubig::from(433u64)).unwrap();
        let too_big = Ibig::from(kp.public().modulus().clone());
        let _ = kp.public().encode(&too_big);
    }

    #[test]
    fn encode_decode_roundtrip_extremes() {
        let kp = PaillierKeyPair::from_primes(Ubig::from(293u64), Ubig::from(433u64)).unwrap();
        let pk = kp.public();
        let half = Ibig::from(pk.modulus() >> 1);
        for m in [Ibig::zero(), half.clone(), -half.clone() + Ibig::from(1i64)] {
            assert_eq!(pk.decode(pk.encode(&m)), m);
        }
    }

    #[test]
    fn trivial_zero_is_identity() {
        let kp = PaillierKeyPair::from_primes(Ubig::from(293u64), Ubig::from(433u64)).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let c = kp.public().encrypt(&Ibig::from(5i64), &mut rng);
        let same = kp.public().add(&c, &kp.public().trivial_zero());
        assert_eq!(kp.secret().decrypt(&same), Ibig::from(5i64));
    }

    #[test]
    fn secret_key_debug_redacts_and_drop_wipes() {
        let kp = PaillierKeyPair::from_primes(Ubig::from(293u64), Ubig::from(433u64)).unwrap();
        let dbg_pair = format!("{:?}", kp);
        assert!(dbg_pair.contains("sk: <redacted>"), "{dbg_pair}");
        let dbg_sk = format!("{:?}", kp.secret());
        assert!(dbg_sk.contains("lambda: <redacted>"), "{dbg_sk}");
        assert!(dbg_sk.contains("mu: <redacted>"), "{dbg_sk}");
        // λ = lcm(292, 432) = 31536 for these primes; its digits must
        // not leak through Debug.
        assert!(!dbg_sk.contains("31536"), "λ digits must not appear");
        // Drop glue exists (the zeroizing Drop impls make these types
        // non-trivially droppable).
        assert!(std::mem::needs_drop::<PaillierSecretKey>());
        assert!(std::mem::needs_drop::<CrtParams>());
    }

    #[test]
    fn sub_rejects_non_unit_ciphertext() {
        let kp = PaillierKeyPair::from_primes(Ubig::from(293u64), Ubig::from(433u64)).unwrap();
        let pk = kp.public();
        let a = pk
            .encrypt_with_r(&Ibig::from(4i64), &Ubig::from(7u64))
            .expect("unit r");
        // A multiple of p shares a factor with n², so it has no inverse:
        // the adversarial shape that used to panic the decryption oracle.
        let evil = Ciphertext::from_raw(Ubig::from(293u64));
        assert_eq!(
            pk.sub(&a, &evil),
            Err(CryptoError::MalformedCiphertext),
            "subtracting a non-unit ciphertext must fail, not panic"
        );
        // The honest direction still works.
        let b = pk
            .encrypt_with_r(&Ibig::from(1i64), &Ubig::from(11u64))
            .expect("unit r");
        let diff = pk.sub(&a, &b).expect("honest ciphertexts are units");
        assert_eq!(kp.secret().decrypt(&diff), Ibig::from(3i64));
    }

    #[test]
    fn scalar_mul_negative_rejects_non_unit_ciphertext() {
        let kp = PaillierKeyPair::from_primes(Ubig::from(293u64), Ubig::from(433u64)).unwrap();
        let pk = kp.public();
        let evil = Ciphertext::from_raw(Ubig::from(293u64 * 293));
        assert_eq!(
            pk.scalar_mul(&evil, &Ibig::from(-2i64)),
            Err(CryptoError::MalformedCiphertext)
        );
        // Positive scalars never need an inverse and always succeed.
        let c = pk
            .encrypt_with_r(&Ibig::from(6i64), &Ubig::from(5u64))
            .expect("unit r");
        let tripled = pk
            .scalar_mul(&c, &Ibig::from(3i64))
            .expect("positive scalar");
        assert_eq!(kp.secret().decrypt(&tripled), Ibig::from(18i64));
    }

    #[test]
    fn public_constant_encryption_deterministic() {
        let kp = PaillierKeyPair::from_primes(Ubig::from(293u64), Ubig::from(433u64)).unwrap();
        let a = kp.public().encrypt_public_constant(&Ibig::from(9i64));
        let b = kp.public().encrypt_public_constant(&Ibig::from(9i64));
        assert_eq!(a, b);
        assert_eq!(kp.secret().decrypt(&a), Ibig::from(9i64));
    }
}
