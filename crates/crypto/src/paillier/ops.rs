//! The ciphertext type.

use pisa_bigint::Ubig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A Paillier ciphertext: an element of `Z_{n²}*`.
///
/// Ciphertexts are plain data — all homomorphic operations live on
/// [`PaillierPublicKey`](super::PaillierPublicKey), which holds the
/// modulus and the precomputed Montgomery context. This keeps ciphertexts
/// cheap to serialize and ship between the PISA parties.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ciphertext(Ubig);

impl Ciphertext {
    /// Wraps a raw residue (assumed already reduced modulo `n²`).
    pub fn from_raw(v: Ubig) -> Self {
        Ciphertext(v)
    }

    /// The raw residue.
    pub fn as_raw(&self) -> &Ubig {
        &self.0
    }

    /// Serialized size in bytes when padded to the full `n²` width.
    pub fn byte_len(&self, n_squared_bits: usize) -> usize {
        n_squared_bits.div_ceil(8)
    }
}

impl fmt::Debug for Ciphertext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print full ciphertexts (multi-kilobit); show a short tag.
        let bytes = self.0.to_be_bytes();
        let tag: String = bytes.iter().take(4).map(|b| format!("{b:02x}")).collect();
        write!(f, "Ciphertext({tag}…, {} bits)", self.0.bit_len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_is_short_and_nonempty() {
        let c = Ciphertext::from_raw(Ubig::from(0xdeadbeefu64) << 512);
        let s = format!("{c:?}");
        assert!(s.starts_with("Ciphertext("));
        assert!(s.len() < 40);
    }

    #[test]
    fn byte_len_rounds_up() {
        let c = Ciphertext::from_raw(Ubig::one());
        assert_eq!(c.byte_len(4096), 512);
        assert_eq!(c.byte_len(4097), 513);
    }
}

/// A precomputed re-randomization factor `rⁿ mod n²`.
///
/// Produced offline by
/// [`PaillierPublicKey::precompute_randomizer`](super::PaillierPublicKey::precompute_randomizer)
/// and consumed (once!) by
/// [`PaillierPublicKey::rerandomize_precomputed`](super::PaillierPublicKey::rerandomize_precomputed).
#[derive(Clone, PartialEq, Eq)]
pub struct Randomizer(pub(crate) Ubig);

impl std::fmt::Debug for Randomizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Randomizer({} bits)", self.0.bit_len())
    }
}

impl pisa_bigint::zeroize::Zeroize for Randomizer {
    /// An unconsumed factor links any ciphertext later refreshed with it
    /// to the refresh event, so pooled factors are wiped when dropped.
    fn zeroize(&mut self) {
        self.0.zeroize();
    }
}
