//! Pooled re-randomization factors — the paper's §VI-A offline/online
//! split as a reusable component.
//!
//! The expensive half of Paillier encryption and re-randomization is the
//! `rⁿ mod n²` factor; the cheap half is one multiplication. A
//! [`RandomizerPool`] holds precomputed factors so the hot path pays only
//! the multiplication, refilling either explicitly ([`RandomizerPool::refill`],
//! e.g. between request batches) or continuously from a background
//! thread ([`RandomizerPool::start_refill_thread`]). Exhaustion never
//! blocks: [`RandomizerPool::take`] returns `None` and the caller falls
//! back to the online exponentiation, with the miss counted so the obs
//! report shows how often the offline budget ran dry.

use super::keys::PaillierPublicKey;
use super::ops::Randomizer;
use pisa_bigint::zeroize::Zeroize;
use rand::Rng;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Hit/miss statistics for one pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Factors served from the pool (each one an exponentiation that
    /// did not happen online).
    pub hits: u64,
    /// Requests that found the pool empty and fell back online.
    pub misses: u64,
}

/// A thread-safe pool of precomputed `rⁿ mod n²` factors for one key.
///
/// Factors are handed out strictly once. Contents are wiped on drop and
/// the `Debug` impl prints only fill levels — an unconsumed factor links
/// any ciphertext later refreshed with it to the refresh event.
pub struct RandomizerPool {
    pk: PaillierPublicKey,
    factors: Mutex<Vec<Randomizer>>,
    /// Signaled when the fill level drops below the refill worker's low
    /// water mark (and on shutdown).
    low_water: Condvar,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    stop: AtomicBool,
}

impl RandomizerPool {
    /// Creates an empty pool that tops up to `capacity` factors per
    /// refill.
    pub fn new(pk: &PaillierPublicKey, capacity: usize) -> Self {
        RandomizerPool {
            pk: pk.clone(),
            factors: Mutex::new(Vec::with_capacity(capacity)),
            low_water: Condvar::new(),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        }
    }

    /// The key this pool precomputes for.
    pub fn public_key(&self) -> &PaillierPublicKey {
        &self.pk
    }

    /// Maximum fill level.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current fill level.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when no factors are pooled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counts since construction.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Tops the pool up to capacity — the offline phase. Factors are
    /// computed *outside* the lock so consumers keep draining while a
    /// refill is in flight.
    pub fn refill<R: Rng + ?Sized>(&self, rng: &mut R) {
        let missing = self.capacity.saturating_sub(self.lock().len());
        if missing == 0 {
            return;
        }
        let fresh: Vec<Randomizer> = (0..missing)
            .map(|_| self.pk.precompute_randomizer(rng))
            .collect();
        let mut pool = self.lock();
        pool.extend(fresh);
        pool.truncate(self.capacity);
    }

    /// Takes one factor, oldest first; `None` (plus a recorded miss)
    /// when the pool is dry — callers then use the online path.
    pub fn take(&self) -> Option<Randomizer> {
        let taken = {
            let mut pool = self.lock();
            if pool.is_empty() {
                None
            } else {
                Some(pool.remove(0))
            }
        };
        match &taken {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs_count!(ModExpAvoided);
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                obs_count!(PoolMiss);
            }
        }
        self.low_water.notify_one();
        taken
    }

    /// Takes up to `count` factors in one lock acquisition, preserving
    /// pool order. Phase paths pre-take a batch and index it by entry
    /// order so sequential and parallel execution consume identical
    /// factors. Returns fewer (possibly zero) when the pool runs dry;
    /// the shortfall is recorded as misses.
    pub fn take_batch(&self, count: usize) -> Vec<Randomizer> {
        let taken: Vec<Randomizer> = {
            let mut pool = self.lock();
            let have = pool.len().min(count);
            pool.drain(..have).collect()
        };
        let hits = taken.len() as u64;
        let misses = (count - taken.len()) as u64;
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
        for _ in 0..hits {
            obs_count!(ModExpAvoided);
        }
        for _ in 0..misses {
            obs_count!(PoolMiss);
        }
        self.low_water.notify_one();
        taken
    }

    /// Spawns a thread that keeps the pool above `low_water` factors
    /// until the pool (or the returned handle) is dropped. For services;
    /// deterministic harnesses use explicit [`refill`](Self::refill)
    /// between batches instead.
    pub fn start_refill_thread<R>(self: &Arc<Self>, mut rng: R) -> RefillHandle
    where
        R: Rng + Send + 'static,
    {
        let pool = Arc::clone(self);
        let low_water = pool.capacity.div_ceil(2);
        let join = std::thread::spawn(move || loop {
            {
                let guard = pool.lock();
                let _unused = pool
                    .low_water
                    .wait_timeout_while(guard, std::time::Duration::from_millis(50), |factors| {
                        factors.len() >= low_water && !pool.stop.load(Ordering::Relaxed)
                    })
                    .unwrap_or_else(|e| e.into_inner());
            }
            if pool.stop.load(Ordering::Relaxed) {
                return;
            }
            pool.refill(&mut rng);
        });
        RefillHandle {
            pool: Arc::clone(self),
            join: Some(join),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Randomizer>> {
        // A panic while holding the lock leaves plain data, not a broken
        // invariant; recover the guard rather than poisoning the pool.
        self.factors.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl fmt::Debug for RandomizerPool {
    /// Redacted: prints fill level and stats, never factor values.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RandomizerPool")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Drop for RandomizerPool {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.low_water.notify_all();
        let mut pool = self.factors.lock().unwrap_or_else(|e| e.into_inner());
        for factor in pool.iter_mut() {
            factor.zeroize();
        }
    }
}

/// Joins the background refill thread on drop.
///
/// Dropping the handle signals the worker to stop and blocks until it
/// exits, so a scoped bench run cannot leak a thread that still holds an
/// `Arc` to the pool.
pub struct RefillHandle {
    pool: Arc<RandomizerPool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl fmt::Debug for RefillHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RefillHandle").finish_non_exhaustive()
    }
}

impl Drop for RefillHandle {
    fn drop(&mut self) {
        self.pool.stop.store(true, Ordering::Relaxed);
        self.pool.low_water.notify_all();
        if let Some(join) = self.join.take() {
            // A worker that panicked has already stopped refilling; the
            // pool stays usable via its fallback path.
            let _outcome = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paillier::PaillierKeyPair;
    use pisa_bigint::{Ibig, Ubig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys() -> PaillierKeyPair {
        PaillierKeyPair::from_primes(Ubig::from(293u64), Ubig::from(433u64)).unwrap()
    }

    #[test]
    fn refill_take_and_fallback() {
        let kp = keys();
        let pool = RandomizerPool::new(kp.public(), 3);
        assert!(pool.take().is_none(), "empty pool misses");
        let mut rng = StdRng::seed_from_u64(1);
        pool.refill(&mut rng);
        assert_eq!(pool.len(), 3);
        for _ in 0..3 {
            assert!(pool.take().is_some());
        }
        assert!(pool.take().is_none());
        assert_eq!(pool.stats(), PoolStats { hits: 3, misses: 2 });
    }

    #[test]
    fn pooled_factors_decrypt_correctly() {
        let kp = keys();
        let pool = RandomizerPool::new(kp.public(), 4);
        let mut rng = StdRng::seed_from_u64(2);
        pool.refill(&mut rng);
        let m = Ibig::from(1234i64);
        let factor = pool.take().unwrap();
        let c = kp.public().encrypt_with_randomizer(&m, &factor);
        assert_eq!(kp.secret().decrypt(&c), m);
        // And for re-randomization of an existing ciphertext.
        let factor = pool.take().unwrap();
        let c2 = kp.public().rerandomize_precomputed(&c, &factor);
        assert_ne!(c, c2);
        assert_eq!(kp.secret().decrypt(&c2), m);
    }

    #[test]
    fn take_batch_preserves_order_and_counts_shortfall() {
        let kp = keys();
        let pool = RandomizerPool::new(kp.public(), 4);
        let mut rng = StdRng::seed_from_u64(3);
        pool.refill(&mut rng);
        let direct = {
            let probe = RandomizerPool::new(kp.public(), 4);
            let mut rng = StdRng::seed_from_u64(3);
            probe.refill(&mut rng);
            probe.take_batch(4)
        };
        let batch = pool.take_batch(6);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch, direct, "batch preserves refill order");
        assert_eq!(pool.stats(), PoolStats { hits: 4, misses: 2 });
    }

    #[test]
    fn background_refill_keeps_pool_fed() {
        let kp = keys();
        let pool = Arc::new(RandomizerPool::new(kp.public(), 8));
        let handle = pool.start_refill_thread(StdRng::seed_from_u64(4));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let mut served = 0usize;
        while served < 20 && std::time::Instant::now() < deadline {
            if pool.take().is_some() {
                served += 1;
            } else {
                std::thread::yield_now();
            }
        }
        drop(handle);
        assert_eq!(served, 20, "refill thread never caught up");
    }

    #[test]
    fn debug_redacts_contents() {
        let kp = keys();
        let pool = RandomizerPool::new(kp.public(), 2);
        let mut rng = StdRng::seed_from_u64(5);
        pool.refill(&mut rng);
        let dbg = format!("{pool:?}");
        assert!(dbg.contains("len"), "{dbg}");
        assert!(!dbg.contains("Ubig"), "factor values must not leak: {dbg}");
    }
}
