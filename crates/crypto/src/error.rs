//! Error type for cryptographic operations.

use std::error::Error;
use std::fmt;

/// Errors produced by the cryptographic primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// A ciphertext was not a unit modulo `n²` (malformed or corrupted).
    MalformedCiphertext,
    /// A plaintext magnitude does not fit the message space `Z_n`.
    PlaintextTooLarge {
        /// Bits of the offending plaintext.
        have_bits: usize,
        /// Bits of the modulus bounding the message space.
        modulus_bits: usize,
    },
    /// Key generation was asked for an unsupported size.
    InvalidKeySize(usize),
    /// A signature failed verification.
    InvalidSignature,
    /// The scalar of a homomorphic scalar multiplication is not invertible
    /// (only possible for adversarial scalars sharing a factor with `n`).
    NonInvertibleScalar,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::MalformedCiphertext => f.write_str("ciphertext is not a unit modulo n^2"),
            CryptoError::PlaintextTooLarge {
                have_bits,
                modulus_bits,
            } => write!(
                f,
                "plaintext of {have_bits} bits exceeds the {modulus_bits}-bit message space"
            ),
            CryptoError::InvalidKeySize(bits) => {
                write!(f, "unsupported key size of {bits} bits")
            }
            CryptoError::InvalidSignature => f.write_str("signature verification failed"),
            CryptoError::NonInvertibleScalar => {
                f.write_str("scalar shares a factor with the modulus")
            }
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errors = [
            CryptoError::MalformedCiphertext,
            CryptoError::PlaintextTooLarge {
                have_bits: 100,
                modulus_bits: 64,
            },
            CryptoError::InvalidKeySize(7),
            CryptoError::InvalidSignature,
            CryptoError::NonInvertibleScalar,
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CryptoError>();
    }
}
