//! Cryptographic primitives for the PISA reproduction.
//!
//! Everything PISA's protocol needs, built on [`pisa_bigint`]:
//!
//! * [`paillier`] — the Paillier cryptosystem with the homomorphic
//!   operations of the paper's Figure 2 (⊕ addition, ⊖ subtraction,
//!   ⊗ scalar multiplication) plus re-randomization and CRT decryption.
//! * [`sha256`] — FIPS 180-4 SHA-256, the hash underlying license
//!   signatures.
//! * [`rsa`] — RSA full-domain-hash signatures used for transmission
//!   permission licenses (§IV-B step 2 of the paper).
//! * [`blind`] — sampling of the one-time blinding factors ε, α, β, η of
//!   equations (14) and (17).
//!
//! # Examples
//!
//! ```
//! use pisa_crypto::paillier::PaillierKeyPair;
//! use pisa_bigint::Ibig;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let keys = PaillierKeyPair::generate(&mut rng, 256);
//! let c1 = keys.public().encrypt(&Ibig::from(20i64), &mut rng);
//! let c2 = keys.public().encrypt(&Ibig::from(22i64), &mut rng);
//! let sum = keys.public().add(&c1, &c2);
//! assert_eq!(keys.secret().decrypt(&sum), Ibig::from(42i64));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Records one crypto operation in the observability layer when the
/// `obs` feature is on; compiles to nothing otherwise, so the hot
/// paths carry zero cost in un-instrumented builds.
#[cfg(feature = "obs")]
macro_rules! obs_count {
    ($op:ident) => {
        pisa_obs::count(pisa_obs::Op::$op)
    };
}

/// Records one crypto operation in the observability layer when the
/// `obs` feature is on; compiles to nothing otherwise.
#[cfg(not(feature = "obs"))]
macro_rules! obs_count {
    ($op:ident) => {};
}

pub mod blind;
mod error;
pub mod paillier;
pub mod rsa;
pub mod sha256;

pub use error::CryptoError;
