//! RSA full-domain-hash signatures for transmission permission licenses.
//!
//! The paper (§IV-B step 2) signs each license with "a typical digital
//! signature algorithm (e.g., RSA, DSA)" and then embeds the signature as
//! a Paillier plaintext in equation (17). That embedding requires the
//! signature integer to fit the SU's Paillier message space, so
//! [`RsaKeyPair::generate_below`] can cap the RSA modulus strictly below a
//! given bound (see DESIGN.md, "License signature domain").
//!
//! The scheme is deterministic RSA-FDH: the message is hashed and
//! expanded to the modulus width with an MGF1-style counter construction
//! over SHA-256, then exponentiated with the private key.
//!
//! # Examples
//!
//! ```
//! use pisa_crypto::rsa::RsaKeyPair;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(2);
//! let keys = RsaKeyPair::generate(&mut rng, 256);
//! let sig = keys.sign(b"license body");
//! assert!(keys.public().verify(b"license body", &sig).is_ok());
//! assert!(keys.public().verify(b"tampered", &sig).is_err());
//! ```

use crate::sha256::{sha256, Sha256};
use crate::CryptoError;
use pisa_bigint::modular::{lcm, mod_inverse, MontCtx};
use pisa_bigint::zeroize::Zeroize;
use pisa_bigint::{prime, Ubig};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Public RSA exponent (F4).
pub const PUBLIC_EXPONENT: u64 = 65537;

/// An RSA public key `(n, e)`.
#[derive(Debug, Clone)]
pub struct RsaPublicKey {
    n: Ubig,
    e: Ubig,
    ctx: MontCtx,
}

impl PartialEq for RsaPublicKey {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.e == other.e
    }
}

impl Eq for RsaPublicKey {}

impl RsaPublicKey {
    /// Reconstructs a public key from the modulus (exponent is fixed to
    /// [`PUBLIC_EXPONENT`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` is even.
    pub fn from_modulus(n: Ubig) -> Self {
        // pisa-lint: allow(panic-freedom): documented panic; an even modulus
        // means corrupted key material, not attacker-reachable input.
        let ctx = MontCtx::new(&n).expect("odd RSA modulus");
        RsaPublicKey {
            n,
            e: Ubig::from(PUBLIC_EXPONENT),
            ctx,
        }
    }

    /// The modulus.
    pub fn modulus(&self) -> &Ubig {
        &self.n
    }

    /// Verifies `signature` over `message`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidSignature`] when the signature does
    /// not match.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), CryptoError> {
        if signature.0 >= self.n {
            return Err(CryptoError::InvalidSignature);
        }
        obs_count!(ModExp);
        let recovered = self.ctx.pow(&signature.0, &self.e);
        if recovered == full_domain_hash(message, &self.n) {
            Ok(())
        } else {
            Err(CryptoError::InvalidSignature)
        }
    }
}

/// An RSA signature, exposed as an integer so PISA can embed it in a
/// Paillier plaintext (equation 17).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature(pub Ubig);

impl Signature {
    /// The signature as an integer.
    pub fn as_integer(&self) -> &Ubig {
        &self.0
    }
}

/// Exported RSA key material (modulus and private exponent).
///
/// Treat as a secret: persisting this persists the signing key, which is
/// why it is only produced by the explicitly named
/// [`RsaKeyPair::export_secret_parts`] and never implements `Serialize`.
/// The private exponent is wiped on drop.
#[doc(alias = "pisa_secret")]
#[derive(Clone)]
pub struct RsaKeyParts {
    /// The modulus `n`.
    pub n: Ubig,
    /// The private exponent `d`.
    pub d: Ubig,
}

impl std::fmt::Debug for RsaKeyParts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the private exponent.
        write!(
            f,
            "RsaKeyParts(n: {} bits, d: <redacted>)",
            self.n.bit_len()
        )
    }
}

impl Drop for RsaKeyParts {
    fn drop(&mut self) {
        self.d.zeroize();
    }
}

/// An RSA key pair. The private exponent is wiped on drop.
#[doc(alias = "pisa_secret")]
#[derive(Clone)]
pub struct RsaKeyPair {
    pk: RsaPublicKey,
    d: Ubig,
}

impl std::fmt::Debug for RsaKeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RsaKeyPair(n: {} bits, d: <redacted>)",
            self.pk.n.bit_len()
        )
    }
}

impl Drop for RsaKeyPair {
    fn drop(&mut self) {
        self.d.zeroize();
    }
}

impl RsaKeyPair {
    /// Generates a key pair with a modulus of exactly `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 64` or `bits` is odd.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Self {
        assert!(
            bits >= 64 && bits.is_multiple_of(2),
            "unsupported RSA size {bits}"
        );
        let e = Ubig::from(PUBLIC_EXPONENT);
        loop {
            let p = prime::gen_prime(rng, bits / 2);
            let q = prime::gen_prime(rng, bits / 2);
            if p == q {
                continue;
            }
            let n = &p * &q;
            if n.bit_len() != bits {
                continue;
            }
            let lam = lcm(&(&p - &Ubig::one()), &(&q - &Ubig::one()));
            let Some(d) = mod_inverse(&e, &lam) else {
                continue;
            };
            let pk = RsaPublicKey::from_modulus(n);
            return RsaKeyPair { pk, d };
        }
    }

    /// Generates a key pair whose modulus is strictly below `bound`
    /// (bit length `bound.bit_len() - slack_bits`), so signatures embed
    /// into a Paillier plaintext space of modulus `bound`.
    ///
    /// # Panics
    ///
    /// Panics if the resulting size would drop below 64 bits.
    pub fn generate_below<R: Rng + ?Sized>(rng: &mut R, bound: &Ubig, slack_bits: usize) -> Self {
        let mut bits = bound.bit_len().saturating_sub(slack_bits);
        if bits % 2 == 1 {
            bits -= 1;
        }
        assert!(bits >= 64, "bound too small for an embedded RSA key");
        let kp = Self::generate(rng, bits);
        debug_assert!(kp.pk.modulus() < bound);
        kp
    }

    /// The public key.
    pub fn public(&self) -> &RsaPublicKey {
        &self.pk
    }

    /// Exports the key material — **including the private exponent** —
    /// for persistence. The name is deliberately loud: callers that
    /// reach for this are writing a signing key somewhere.
    pub fn export_secret_parts(&self) -> RsaKeyParts {
        RsaKeyParts {
            n: self.pk.n.clone(),
            d: self.d.clone(),
        }
    }

    /// Reconstructs a key pair from exported parts.
    ///
    /// # Panics
    ///
    /// Panics if the modulus is even (not a valid RSA modulus).
    pub fn from_parts(mut parts: RsaKeyParts) -> Self {
        // `RsaKeyParts` has a wiping `Drop`, so move the fields out with
        // `take` (the leftover zeros are wiped again, harmlessly).
        let n = std::mem::take(&mut parts.n);
        let d = std::mem::take(&mut parts.d);
        RsaKeyPair {
            pk: RsaPublicKey::from_modulus(n),
            d,
        }
    }

    /// Signs `message` (deterministic RSA-FDH).
    pub fn sign(&self, message: &[u8]) -> Signature {
        let h = full_domain_hash(message, &self.pk.n);
        obs_count!(ModExp);
        Signature(self.pk.ctx.pow(&h, &self.d))
    }
}

/// MGF1-style full-domain hash: expands SHA-256(message) to the width of
/// `n` and reduces the result below `n`.
fn full_domain_hash(message: &[u8], n: &Ubig) -> Ubig {
    let seed = sha256(message);
    let out_len = n.bit_len().div_ceil(8);
    let mut out = Vec::with_capacity(out_len + 32);
    let mut counter = 0u32;
    while out.len() < out_len {
        let mut h = Sha256::new();
        h.update(&seed);
        h.update(&counter.to_be_bytes());
        out.extend_from_slice(&h.finalize());
        counter += 1;
    }
    out.truncate(out_len);
    // Clear the top byte so the value is comfortably below n.
    if let Some(top) = out.first_mut() {
        *top = 0;
    }
    Ubig::from_be_bytes(&out) % n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xc0ffee)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = RsaKeyPair::generate(&mut rng(), 256);
        for msg in [b"".as_slice(), b"a", b"license: SU 7, block 31"] {
            let sig = kp.sign(msg);
            assert!(kp.public().verify(msg, &sig).is_ok());
        }
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let kp = RsaKeyPair::generate(&mut rng(), 256);
        let sig = kp.sign(b"original");
        assert_eq!(
            kp.public().verify(b"other", &sig),
            Err(CryptoError::InvalidSignature)
        );
    }

    #[test]
    fn verify_rejects_perturbed_signature() {
        let kp = RsaKeyPair::generate(&mut rng(), 256);
        let sig = kp.sign(b"msg");
        let bad = Signature(sig.0.clone() + Ubig::one());
        assert!(kp.public().verify(b"msg", &bad).is_err());
        let oversized = Signature(kp.public().modulus().clone());
        assert!(kp.public().verify(b"msg", &oversized).is_err());
    }

    #[test]
    fn signing_is_deterministic() {
        let kp = RsaKeyPair::generate(&mut rng(), 256);
        assert_eq!(kp.sign(b"msg"), kp.sign(b"msg"));
    }

    #[test]
    fn export_import_roundtrip() {
        let kp = RsaKeyPair::generate(&mut rng(), 256);
        let sig = kp.sign(b"persisted");
        let restored = RsaKeyPair::from_parts(kp.export_secret_parts());
        assert_eq!(restored.sign(b"persisted"), sig);
        assert!(restored.public().verify(b"persisted", &sig).is_ok());
        // Debug never leaks d, for the parts or the pair itself.
        let dbg = format!("{:?}", kp.export_secret_parts());
        assert!(dbg.contains("redacted"));
        assert!(format!("{kp:?}").contains("redacted"));
        // The wiping Drop is real, not optimized away by the type system.
        assert!(std::mem::needs_drop::<RsaKeyPair>());
        assert!(std::mem::needs_drop::<RsaKeyParts>());
    }

    #[test]
    fn generate_below_respects_bound() {
        let mut r = rng();
        let bound = Ubig::one() << 300;
        let kp = RsaKeyPair::generate_below(&mut r, &bound, 64);
        assert!(kp.public().modulus() < &bound);
        assert!(kp.public().modulus().bit_len() <= 300 - 64);
        let sig = kp.sign(b"embedded");
        assert!(sig.as_integer() < &bound);
        assert!(kp.public().verify(b"embedded", &sig).is_ok());
    }

    #[test]
    fn fdh_is_below_modulus_and_spreads() {
        let n = (Ubig::one() << 255) - Ubig::one();
        let h1 = full_domain_hash(b"a", &n);
        let h2 = full_domain_hash(b"b", &n);
        assert!(h1 < n && h2 < n);
        assert_ne!(h1, h2);
        // Full-width expansion: the hash should use high bytes too.
        assert!(h1.bit_len() > 128);
    }
}
