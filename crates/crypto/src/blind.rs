//! Blinding-factor sampling for PISA's sign-test outsourcing.
//!
//! Equation (14) of the paper blinds each interference entry `I(c,i)`
//! before it reaches the STP:
//!
//! ```text
//! V(c,i) = ε(c,i) · (α(c,i) · I(c,i) − β(c,i))
//! ```
//!
//! where `α > β > 0` are one-time large random integers and
//! `ε ∈ {−1, +1}` hides the sign. For correctness the STP's sign reading
//! must match the sign of `I`: with `I ≥ 1`, `αI − β ≥ α − β > 0`, and
//! with `I ≤ 0`, `αI − β ≤ −β < 0`. For *privacy*, `α` and `β` must be
//! large enough that `V` reveals negligible information about `I`; for
//! *correctness inside Paillier*, `|V|` must stay below `n/2` so the
//! centered lift does not wrap.

use pisa_bigint::random::{random_below, random_range};
use pisa_bigint::zeroize::Zeroize;
use pisa_bigint::{Ibig, Sign, Ubig};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One-time blinding factors for a single matrix entry.
///
/// Tagged `pisa_secret`: recovering `(ε, α, β)` lets the STP unblind
/// `V` back to the interference indicator, so the factors must never be
/// printed or serialized and are wiped on drop.
#[doc(alias = "pisa_secret")]
#[derive(Clone, PartialEq, Eq)]
pub struct BlindingFactors {
    /// Sign flip ε ∈ {−1, +1}.
    pub epsilon: SignFlip,
    /// Multiplicative blind α (strictly greater than β).
    pub alpha: Ubig,
    /// Additive blind β (strictly positive).
    pub beta: Ubig,
}

impl fmt::Debug for BlindingFactors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BlindingFactors { <redacted> }")
    }
}

impl Drop for BlindingFactors {
    fn drop(&mut self) {
        // ε is a two-variant Copy enum; only the big integers carry
        // enough entropy to be worth wiping.
        self.alpha.zeroize();
        self.beta.zeroize();
    }
}

/// The ε factor of equation (14): a uniformly random sign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignFlip {
    /// ε = +1.
    Keep,
    /// ε = −1.
    Flip,
}

impl SignFlip {
    /// Samples a uniform sign.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        if rng.next_u64() & 1 == 0 {
            SignFlip::Keep
        } else {
            SignFlip::Flip
        }
    }

    /// Applies the flip to a signed value.
    pub fn apply(self, v: Ibig) -> Ibig {
        match self {
            SignFlip::Keep => v,
            SignFlip::Flip => -v,
        }
    }

    /// The flip as a scalar (+1 / −1) for homomorphic ⊗.
    pub fn as_scalar(self) -> Ibig {
        match self {
            SignFlip::Keep => Ibig::from(1i64),
            SignFlip::Flip => Ibig::from(-1i64),
        }
    }
}

/// Sampler for blinding factors with a fixed bit budget.
///
/// The paper only requires "large positive" α > β with ε ∈ {−1, 1} and
/// argues informally that this hides `I`. Our reproduction found that a
/// *fixed-width* α (all samples near `2^b`) leaks the **magnitude** of
/// `I` to the STP: `|V| ≈ α·|I|`, so `log₂|V| − b` pins `|I|` within a
/// factor of ~4 (see `magnitude_leakage_with_fixed_exponent` below).
/// This sampler therefore draws the *exponent* of the blind uniformly
/// from `[blind_bits/2, blind_bits]` (log-uniform magnitude smearing):
/// with the paper's parameters that smears `log₂|V|` across ~256 bits,
/// drowning the ≤60-bit spread of `log₂|I|`. β is drawn in the same
/// octave as α (and strictly below it), so the `I = 0` case — where
/// `V = −β` — is indistinguishable from small non-zero indicators.
///
/// # Examples
///
/// ```
/// use pisa_crypto::blind::Blinder;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let blinder = Blinder::new(128);
/// let f = blinder.sample(&mut rng);
/// assert!(f.alpha > f.beta);
/// ```
#[derive(Debug, Clone)]
pub struct Blinder {
    blind_bits: usize,
}

impl Blinder {
    /// Creates a sampler; `blind_bits` must be at least 16.
    ///
    /// # Panics
    ///
    /// Panics if `blind_bits < 16` (too small to blind anything).
    pub fn new(blind_bits: usize) -> Self {
        assert!(blind_bits >= 16, "blinding factors below 16 bits are toys");
        Blinder { blind_bits }
    }

    /// Maximum bit budget for α and β.
    pub fn blind_bits(&self) -> usize {
        self.blind_bits
    }

    /// Samples one-time factors with `α > β > 0` and random ε, with a
    /// log-uniform magnitude (see the type docs).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> BlindingFactors {
        // Exponent uniform over the upper half of the budget.
        let e_lo = (self.blind_bits / 2).max(8);
        let e_span = (self.blind_bits - e_lo + 1) as u64;
        // pisa-lint: allow(panic-freedom): the remainder is < e_span ≤
        // blind_bits + 1, far below u32::MAX, so the cast cannot truncate.
        let e = e_lo + (rng.next_u64() % e_span) as usize;

        let lo = Ubig::one() << (e - 1);
        let hi = Ubig::one() << e;
        let beta = random_range(rng, &lo, &hi);
        let alpha_hi = Ubig::one() << (e + 1);
        let alpha = random_range(rng, &(&beta + &Ubig::one()), &alpha_hi);
        BlindingFactors {
            epsilon: SignFlip::sample(rng),
            alpha,
            beta,
        }
    }

    /// Worst-case magnitude of `α·I − β` given `|I| ≤ max_i`: used to
    /// assert no wrap-around in the Paillier plaintext space.
    pub fn max_blinded_magnitude(&self, max_i: &Ubig) -> Ubig {
        let alpha_max = Ubig::one() << (self.blind_bits + 1);
        &alpha_max * max_i + (Ubig::one() << self.blind_bits)
    }
}

/// Blinds a plaintext interference value: `ε(αI − β)` — the plaintext
/// mirror of equation (14), used by tests and the plaintext reference
/// implementation.
pub fn blind_value(i: &Ibig, f: &BlindingFactors) -> Ibig {
    let scaled = Ibig::from(f.alpha.clone()) * i - Ibig::from(f.beta.clone());
    f.epsilon.apply(scaled)
}

/// Recovers the sign of `I` from the blinded value, as the STP + SDC pair
/// does: the STP reads `sign(V)` and the SDC multiplies by ε.
pub fn unblind_sign(v: &Ibig, epsilon: SignFlip) -> Sign {
    let corrected = epsilon.apply(v.clone());
    if corrected.is_positive() {
        Sign::Positive
    } else {
        Sign::Negative
    }
}

/// Samples the η factor of equation (17): a one-time large random
/// integer that garbles the license signature when any `Q(c,i) ≠ 0`.
pub fn sample_eta<R: Rng + ?Sized>(rng: &mut R, modulus: &Ubig) -> Ubig {
    // η uniform in [2^64, n/4): large, and η·ΣQ cannot be ≡ 0.
    let lo = Ubig::one() << 64;
    let hi = modulus >> 2;
    assert!(lo < hi, "modulus too small to sample eta");
    random_range(rng, &lo, &hi)
}

/// Samples a nonzero value below `bound` (helper for protocol tests).
pub fn sample_nonzero_below<R: Rng + ?Sized>(rng: &mut R, bound: &Ubig) -> Ubig {
    loop {
        let v = random_below(rng, bound);
        if !v.is_zero() {
            return v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(44)
    }

    #[test]
    fn alpha_always_exceeds_beta() {
        let mut r = rng();
        let blinder = Blinder::new(64);
        for _ in 0..100 {
            let f = blinder.sample(&mut r);
            assert!(f.alpha > f.beta);
            assert!(!f.beta.is_zero());
        }
    }

    #[test]
    fn blinded_sign_matches_indicator() {
        // sign(ε·V) must equal the predicate I > 0 for every I ≠ 0 … and
        // for I = 0 the blinded value is negative (β > 0), matching the
        // paper's "≤ 0 ⇒ deny" branch.
        let mut r = rng();
        let blinder = Blinder::new(32);
        for i in [-1_000_000i64, -5, -1, 0, 1, 5, 1_000_000] {
            let f = blinder.sample(&mut r);
            let v = blind_value(&Ibig::from(i), &f);
            let recovered = unblind_sign(&v, f.epsilon);
            let expected = if i > 0 {
                pisa_bigint::Sign::Positive
            } else {
                pisa_bigint::Sign::Negative
            };
            assert_eq!(recovered, expected, "I = {i}");
        }
    }

    #[test]
    fn epsilon_is_balanced() {
        let mut r = rng();
        let mut keeps = 0;
        for _ in 0..1000 {
            if SignFlip::sample(&mut r) == SignFlip::Keep {
                keeps += 1;
            }
        }
        assert!((300..700).contains(&keeps), "keeps = {keeps}");
    }

    #[test]
    fn max_magnitude_bounds_actual() {
        let mut r = rng();
        let blinder = Blinder::new(40);
        let max_i = Ubig::from(1u64 << 20);
        let bound = blinder.max_blinded_magnitude(&max_i);
        for _ in 0..50 {
            let f = blinder.sample(&mut r);
            let v = blind_value(&Ibig::from(1i64 << 20), &f);
            assert!(v.magnitude() < &bound);
            let v = blind_value(&Ibig::from(-(1i64 << 20)), &f);
            assert!(v.magnitude() < &bound);
        }
    }

    #[test]
    fn eta_in_range() {
        let mut r = rng();
        let n = Ubig::one() << 256;
        for _ in 0..20 {
            let eta = sample_eta(&mut r, &n);
            assert!(eta >= (Ubig::one() << 64));
            assert!(eta < (&n >> 2));
        }
    }

    #[test]
    #[should_panic(expected = "toys")]
    fn tiny_blinder_rejected() {
        let _ = Blinder::new(8);
    }

    #[test]
    fn magnitude_leakage_with_fixed_exponent() {
        // The failure mode the log-uniform sampler prevents: if α always
        // sits near 2^64, |V| = |α·I − β| pins log₂|I| within ~2 bits,
        // so an STP can distinguish a tiny indicator from a huge one.
        let mut r = rng();
        let small = Ibig::from(2i64);
        let large = Ibig::from(1i64 << 40);
        for _ in 0..50 {
            // Fixed-exponent factors, as a naive reading of the paper
            // would sample them.
            let beta = pisa_bigint::random::random_range(
                &mut r,
                &(Ubig::one() << 63),
                &(Ubig::one() << 64),
            );
            let alpha = pisa_bigint::random::random_range(
                &mut r,
                &(&beta + &Ubig::one()),
                &(Ubig::one() << 65),
            );
            let f = BlindingFactors {
                epsilon: SignFlip::sample(&mut r),
                alpha,
                beta,
            };
            let v_small = blind_value(&small, &f).magnitude().bit_len();
            let v_large = blind_value(&large, &f).magnitude().bit_len();
            // The bit lengths differ by ≈ 40 — the magnitude leaks.
            assert!(v_large >= v_small + 30, "{v_small} vs {v_large}");
        }
    }

    #[test]
    fn log_uniform_sampler_overlaps_magnitudes() {
        // With the log-uniform sampler the |V| bit-length distributions
        // for |I| = 2 and |I| = 2^40 overlap substantially: the STP
        // cannot reliably order two entries by |I|.
        let mut r = rng();
        let blinder = Blinder::new(256);
        let small = Ibig::from(2i64);
        let large = Ibig::from(1i64 << 40);
        let runs = 300;
        let mut small_wins = 0;
        for _ in 0..runs {
            let fa = blinder.sample(&mut r);
            let fb = blinder.sample(&mut r);
            let v_small = blind_value(&small, &fa).magnitude().bit_len();
            let v_large = blind_value(&large, &fb).magnitude().bit_len();
            if v_small > v_large {
                small_wins += 1;
            }
        }
        // A perfect distinguisher would give 0; ours should be well
        // away from 0 (the exponent smear spans 128 bits vs the 38-bit
        // value gap, so ~(128−38)/128 ≈ 0.35 of mass inverts order).
        assert!(
            small_wins > runs / 8,
            "only {small_wins}/{runs} inversions — magnitudes still leak"
        );
    }

    #[test]
    fn zero_indicator_hides_among_small_values() {
        // I = 0 gives V = −β; its magnitude must look like any other
        // same-octave value, not like a special tiny number.
        let mut r = rng();
        let blinder = Blinder::new(128);
        for _ in 0..50 {
            let f = blinder.sample(&mut r);
            let v0 = blind_value(&Ibig::zero(), &f);
            // β lives in [2^(e−1), 2^e) with e ≥ 64: never small.
            assert!(v0.magnitude().bit_len() >= 60);
        }
    }
}
