//! Pins the obs op counts of the Paillier primitives to the operations
//! they actually perform, so counter drift (an `obs_count!` site falling
//! out of sync with the code it annotates) fails loudly instead of
//! skewing every BENCH trajectory point.
//!
//! Compiled only when the crate's `obs` feature is active — always the
//! case for a workspace-wide `cargo test`, where the CLI's dependency on
//! `pisa-core/obs` unifies the feature on.
#![cfg(feature = "obs")]

use pisa_bigint::{Ibig, Ubig};
use pisa_crypto::paillier::{PaillierKeyPair, RandomizerPool};
use pisa_obs::OpTotals;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs `f` with counters enabled and returns the ops it recorded.
///
/// The counters are process globals, so every assertion lives in this one
/// `#[test]` (its own process under the default harness) instead of
/// racing parallel test threads.
fn ops_of(f: impl FnOnce()) -> OpTotals {
    let before = pisa_obs::counters();
    f();
    pisa_obs::counters().delta_since(&before)
}

#[test]
fn primitive_op_counts_are_pinned() {
    pisa_obs::set_enabled(true);
    let kp = PaillierKeyPair::from_primes(Ubig::from(293u64), Ubig::from(433u64)).unwrap();
    let pk = kp.public();
    let mut rng = StdRng::seed_from_u64(0x0c0e);
    let m = Ibig::from(77i64);

    // Encryption: one r^n exponentiation, two multiplications (m·n and
    // g^m · r^n).
    let mut slot = None;
    let ops = ops_of(|| slot = Some(pk.encrypt(&m, &mut rng)));
    let c = slot.expect("encrypted");
    assert_eq!(
        ops,
        OpTotals {
            mod_exps: 1,
            mod_muls: 2,
            encryptions: 1,
            ..OpTotals::default()
        },
        "encrypt"
    );

    // CRT decryption: two half-size exponentiations.
    let ops = ops_of(|| assert_eq!(kp.secret().decrypt(&c), m));
    assert_eq!(
        ops,
        OpTotals {
            mod_exps: 2,
            decryptions: 1,
            ..OpTotals::default()
        },
        "decrypt"
    );

    // Online re-randomization: the precomputed exponentiation plus the
    // one online multiplication.
    let ops = ops_of(|| {
        pk.rerandomize(&c, &mut rng);
    });
    assert_eq!(
        ops,
        OpTotals {
            mod_exps: 1,
            mod_muls: 1,
            rerandomizations: 1,
            ..OpTotals::default()
        },
        "rerandomize"
    );

    // Pooled encryption pays no exponentiation at all; the pool hit
    // records the avoided one.
    let pool = RandomizerPool::new(pk, 1);
    pool.refill(&mut rng);
    let ops = ops_of(|| {
        let factor = pool.take().expect("refilled");
        let c2 = pk.encrypt_with_randomizer(&m, &factor);
        assert_eq!(kp.secret().decrypt(&c2), m);
    });
    assert_eq!(
        ops,
        OpTotals {
            mod_exps: 2, // the decrypt check
            mod_muls: 2,
            encryptions: 1,
            decryptions: 1,
            mod_exps_avoided: 1,
            ..OpTotals::default()
        },
        "pooled encrypt"
    );

    // A dry pool records the miss of the fallback path.
    let ops = ops_of(|| assert!(pool.take().is_none()));
    assert_eq!(
        ops,
        OpTotals {
            pool_misses: 1,
            ..OpTotals::default()
        },
        "pool miss"
    );

    // ±1 scalars short-circuit the ladder.
    let ops = ops_of(|| {
        pk.scalar_mul(&c, &Ibig::from(1i64)).unwrap();
        pk.scalar_mul(&c, &Ibig::from(-1i64)).unwrap();
    });
    assert_eq!(
        ops,
        OpTotals {
            mod_exps_avoided: 2,
            ..OpTotals::default()
        },
        "scalar_mul fast path"
    );

    // Larger scalars still pay the exponentiation.
    let ops = ops_of(|| {
        pk.scalar_mul(&c, &Ibig::from(3i64)).unwrap();
    });
    assert_eq!(
        ops,
        OpTotals {
            mod_exps: 1,
            ..OpTotals::default()
        },
        "scalar_mul general path"
    );

    pisa_obs::set_enabled(false);
}
