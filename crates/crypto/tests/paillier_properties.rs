//! Property-based tests for the Paillier cryptosystem and blinding.

use pisa_bigint::{Ibig, Ubig};
use pisa_crypto::blind::{blind_value, unblind_sign, Blinder};
use pisa_crypto::paillier::PaillierKeyPair;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// One shared small key pair — keygen is the expensive part, and the
/// homomorphic properties are independent of which valid key is used.
fn keys() -> &'static PaillierKeyPair {
    static KEYS: OnceLock<PaillierKeyPair> = OnceLock::new();
    KEYS.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xabcdef);
        PaillierKeyPair::generate(&mut rng, 256)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn enc_dec_roundtrip(m in any::<i64>(), seed in any::<u64>()) {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Ibig::from(m);
        let c = kp.public().encrypt(&m, &mut rng);
        prop_assert_eq!(kp.secret().decrypt(&c), m);
    }

    #[test]
    fn additive_homomorphism(a in any::<i32>(), b in any::<i32>(), seed in any::<u64>()) {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = kp.public().encrypt(&Ibig::from(a as i64), &mut rng);
        let cb = kp.public().encrypt(&Ibig::from(b as i64), &mut rng);
        let sum = kp.public().add(&ca, &cb);
        prop_assert_eq!(kp.secret().decrypt(&sum), Ibig::from(a as i64 + b as i64));
    }

    #[test]
    fn subtractive_homomorphism(a in any::<i32>(), b in any::<i32>(), seed in any::<u64>()) {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = kp.public().encrypt(&Ibig::from(a as i64), &mut rng);
        let cb = kp.public().encrypt(&Ibig::from(b as i64), &mut rng);
        let diff = kp.public().sub(&ca, &cb).unwrap();
        prop_assert_eq!(kp.secret().decrypt(&diff), Ibig::from(a as i64 - b as i64));
    }

    #[test]
    fn scalar_homomorphism(m in -1000i64..1000, k in -1000i64..1000, seed in any::<u64>()) {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = kp.public().encrypt(&Ibig::from(m), &mut rng);
        let ck = kp.public().scalar_mul(&c, &Ibig::from(k)).unwrap();
        prop_assert_eq!(kp.secret().decrypt(&ck), Ibig::from(m * k));
    }

    #[test]
    fn crt_equals_standard_decrypt(m in any::<i64>(), seed in any::<u64>()) {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = kp.public().encrypt(&Ibig::from(m), &mut rng);
        prop_assert_eq!(kp.secret().decrypt(&c), kp.secret().decrypt_standard(&c));
    }

    #[test]
    fn rerandomization_invariant(m in any::<i64>(), seed in any::<u64>()) {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = kp.public().encrypt(&Ibig::from(m), &mut rng);
        let c2 = kp.public().rerandomize(&c, &mut rng);
        prop_assert_ne!(&c, &c2);
        prop_assert_eq!(kp.secret().decrypt(&c2), Ibig::from(m));
    }

    #[test]
    fn blinding_preserves_strict_positivity(i in any::<i64>(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let blinder = Blinder::new(64);
        let f = blinder.sample(&mut rng);
        let v = blind_value(&Ibig::from(i), &f);
        let sign = unblind_sign(&v, f.epsilon);
        if i > 0 {
            prop_assert_eq!(sign, pisa_bigint::Sign::Positive);
        } else {
            prop_assert_eq!(sign, pisa_bigint::Sign::Negative);
        }
    }

    #[test]
    fn blinded_value_never_zero(i in any::<i64>(), seed in any::<u64>()) {
        // β > 0 guarantees the STP never sees an exact zero for I = 0.
        let mut rng = StdRng::seed_from_u64(seed);
        let blinder = Blinder::new(64);
        let f = blinder.sample(&mut rng);
        prop_assert!(!blind_value(&Ibig::from(i), &f).is_zero());
    }

    #[test]
    fn homomorphic_linear_combination(
        a in -10_000i64..10_000,
        b in -10_000i64..10_000,
        k in -100i64..100,
        seed in any::<u64>(),
    ) {
        // D(E(a) ⊕ (k ⊗ E(b))) == a + k·b — the exact shape of eq. (14).
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(seed);
        let pk = kp.public();
        let ca = pk.encrypt(&Ibig::from(a), &mut rng);
        let cb = pk.encrypt(&Ibig::from(b), &mut rng);
        let combo = pk.add(&ca, &pk.scalar_mul(&cb, &Ibig::from(k)).unwrap());
        prop_assert_eq!(kp.secret().decrypt(&combo), Ibig::from(a + k * b));
    }

    #[test]
    fn big_random_plaintexts(seed in any::<u64>()) {
        // Plaintexts drawn across the whole centered domain roundtrip.
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(seed);
        let half = kp.public().modulus() >> 1;
        let m = pisa_bigint::random::random_below(&mut rng, &half);
        let m = if seed.is_multiple_of(2) {
            Ibig::from(m)
        } else {
            -Ibig::from(m)
        };
        let c = kp.public().encrypt(&m, &mut rng);
        prop_assert_eq!(kp.secret().decrypt(&c), m);
    }
}

#[test]
fn signature_embeds_in_plaintext_space() {
    // RSA generated below the Paillier modulus always produces signatures
    // that decrypt intact after a Paillier roundtrip — equation (17)'s
    // happy path.
    let mut rng = StdRng::seed_from_u64(5);
    let kp = keys();
    let rsa = pisa_crypto::rsa::RsaKeyPair::generate_below(&mut rng, kp.public().modulus(), 64);
    let sig = rsa.sign(b"license");
    let as_plain = Ibig::from(sig.as_integer().clone());
    let c = kp.public().encrypt(&as_plain, &mut rng);
    let recovered = kp.secret().decrypt(&c);
    assert_eq!(recovered.magnitude(), sig.as_integer());
    let recovered_sig = pisa_crypto::rsa::Signature(recovered.into_magnitude());
    assert!(rsa.public().verify(b"license", &recovered_sig).is_ok());
}

#[test]
fn garbled_signature_fails_verification() {
    // Adding η·(−2) to a signature (equation 17's deny path) yields an
    // integer that fails verification.
    let mut rng = StdRng::seed_from_u64(6);
    let kp = keys();
    let rsa = pisa_crypto::rsa::RsaKeyPair::generate_below(&mut rng, kp.public().modulus(), 64);
    let sig = rsa.sign(b"license");
    let eta = pisa_crypto::blind::sample_eta(&mut rng, kp.public().modulus());
    let garbled = Ibig::from(sig.as_integer().clone()) + Ibig::from(eta) * Ibig::from(-2i64);
    let c = kp.public().encrypt(&garbled, &mut rng);
    let recovered = kp.secret().decrypt(&c);
    let candidate = pisa_crypto::rsa::Signature(recovered.rem_euclid(rsa.public().modulus()));
    assert!(rsa.public().verify(b"license", &candidate).is_err());
}

#[test]
fn ciphertext_sizes_match_table2_shape() {
    // Table II: with |n| = 2048, pk/ct are 4096 bits and plaintext 2048.
    // Verified structurally at a smaller size: ct width = 2·|n|.
    let kp = keys();
    assert_eq!(kp.public().key_bits(), 256);
    assert_eq!(kp.public().modulus_squared().bit_len().div_ceil(8), 64);
    assert_eq!(kp.public().ciphertext_bytes(), 64);
}

#[test]
fn encrypt_with_r_rejects_degenerate_r() {
    // r must be a unit of Z_n: r = 0, r = n, and anything sharing a
    // factor with n produce undecryptable ciphertexts that poison
    // later sub/invert chains — they must be rejected up front.
    let kp =
        PaillierKeyPair::from_primes(Ubig::from(293u64), Ubig::from(433u64)).expect("valid primes");
    let pk = kp.public();
    let m = Ibig::from(42i64);
    for bad in [
        Ubig::zero(),
        pk.modulus().clone(),
        Ubig::from(293u64),     // = p
        Ubig::from(433u64 * 3), // multiple of q
        pk.modulus() * &Ubig::from(5u64),
    ] {
        assert_eq!(
            pk.encrypt_with_r(&m, &bad),
            Err(pisa_crypto::CryptoError::MalformedCiphertext),
            "r = {bad:?} must be rejected"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encrypt_with_r_accepts_exactly_the_units(r in 0u64..500_000) {
        // Small key so gcd structure is exercised across the whole range.
        let kp = PaillierKeyPair::from_primes(Ubig::from(293u64), Ubig::from(433u64))
            .expect("valid primes");
        let pk = kp.public();
        let m = Ibig::from(17i64);
        let r_big = Ubig::from(r);
        let is_unit = r % 293 != 0 && r % 433 != 0;
        match pk.encrypt_with_r(&m, &r_big) {
            Ok(c) => {
                prop_assert!(is_unit, "non-unit r = {} accepted", r);
                prop_assert_eq!(kp.secret().decrypt(&c), m);
            }
            Err(e) => {
                prop_assert!(!is_unit, "unit r = {} rejected: {:?}", r, e);
            }
        }
    }
}
