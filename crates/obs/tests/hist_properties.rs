//! Edge-case and property tests for the log₂-bucketed latency
//! histogram: the degenerate shapes (empty, single sample, saturating
//! samples above the top bucket) and the ordering/bracketing invariants
//! that must hold for every possible sample set.

use pisa_obs::hist::Histogram;
use proptest::prelude::*;
use std::time::Duration;

#[test]
fn empty_histogram_reports_zeros_everywhere() {
    let h = Histogram::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), Duration::ZERO);
    assert_eq!(h.mean(), Duration::ZERO);
    assert_eq!(h.min(), Duration::ZERO);
    assert_eq!(h.max(), Duration::ZERO);
    let p = h.percentiles();
    assert_eq!(p.p50, Duration::ZERO);
    assert_eq!(p.p95, Duration::ZERO);
    assert_eq!(p.p99, Duration::ZERO);
    // Out-of-range quantiles clamp rather than panic, even when empty.
    assert_eq!(h.quantile(-1.0), Duration::ZERO);
    assert_eq!(h.quantile(2.0), Duration::ZERO);
}

#[test]
fn single_sample_pins_every_statistic() {
    let mut h = Histogram::new();
    let s = Duration::from_micros(37);
    h.record(s);
    assert_eq!(h.count(), 1);
    assert_eq!(h.sum(), s);
    assert_eq!(h.mean(), s);
    assert_eq!(h.min(), s);
    assert_eq!(h.max(), s);
    // With one sample every quantile resolves to the same bucket, and
    // the upper-edge estimate is clamped to the (known) max = s.
    let p = h.percentiles();
    assert_eq!(p.p50, s);
    assert_eq!(p.p95, s);
    assert_eq!(p.p99, s);
}

#[test]
fn zero_duration_samples_land_in_the_bottom_bucket() {
    let mut h = Histogram::new();
    h.record(Duration::ZERO);
    h.record(Duration::ZERO);
    assert_eq!(h.count(), 2);
    assert_eq!(h.min(), Duration::ZERO);
    assert_eq!(h.max(), Duration::ZERO);
    assert_eq!(h.quantile(0.5), Duration::ZERO);
}

#[test]
fn samples_above_the_top_bucket_saturate_instead_of_panicking() {
    // Duration::MAX is ~5.8e11 years; its nanosecond count overflows
    // u64 and must saturate to u64::MAX, landing in the top bucket.
    let mut h = Histogram::new();
    h.record(Duration::MAX);
    assert_eq!(h.count(), 1);
    assert_eq!(h.max(), Duration::from_nanos(u64::MAX));
    assert_eq!(h.quantile(0.99), Duration::from_nanos(u64::MAX));
    // A second astronomically large sample keeps the sum finite.
    h.record(Duration::MAX);
    assert!(h.sum() >= h.max());
    assert_eq!(h.percentiles().p50, Duration::from_nanos(u64::MAX));
}

#[test]
fn merge_with_empty_is_identity_in_both_directions() {
    let mut a = Histogram::new();
    a.record(Duration::from_millis(3));
    let before = (a.count(), a.sum(), a.min(), a.max(), a.percentiles());
    a.merge(&Histogram::new());
    assert_eq!(
        (a.count(), a.sum(), a.min(), a.max(), a.percentiles()),
        before
    );

    let mut empty = Histogram::new();
    empty.merge(&a);
    assert_eq!(empty.count(), a.count());
    assert_eq!(empty.min(), a.min());
    assert_eq!(empty.max(), a.max());
    assert_eq!(empty.percentiles(), a.percentiles());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For any sample set: percentiles are ordered, bracketed by
    /// min/max, and the quantile curve is monotone in `q`.
    #[test]
    fn percentiles_are_ordered_and_bracketed(
        samples in proptest::collection::vec(any::<u64>(), 1..64),
    ) {
        let mut h = Histogram::new();
        for &ns in &samples {
            h.record(Duration::from_nanos(ns));
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let p = h.percentiles();
        prop_assert!(p.p50 <= p.p95, "p50 {:?} > p95 {:?}", p.p50, p.p95);
        prop_assert!(p.p95 <= p.p99, "p95 {:?} > p99 {:?}", p.p95, p.p99);
        prop_assert!(p.p50 >= h.min());
        prop_assert!(p.p99 <= h.max());
        let mut prev = Duration::ZERO;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            prop_assert!(v >= prev, "quantile not monotone at q={q}");
            prev = v;
        }
        // Upper-edge estimate: within 2x of the true value and never
        // under-reporting. The true median is >= the bucket's lower
        // edge, so p50 <= 2 * true_median for nonzero samples.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let true_median = sorted[(sorted.len() - 1) / 2];
        prop_assert!(p.p50 >= Duration::from_nanos(true_median).min(h.max()));
    }

    /// Recording `a ++ b` into one histogram equals recording them
    /// separately and merging: same count, sum, extrema, percentiles.
    #[test]
    fn merge_equals_bulk_recording(
        a in proptest::collection::vec(any::<u64>(), 0..32),
        b in proptest::collection::vec(any::<u64>(), 0..32),
    ) {
        let mut bulk = Histogram::new();
        for &ns in a.iter().chain(&b) {
            bulk.record(Duration::from_nanos(ns));
        }
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        for &ns in &a {
            ha.record(Duration::from_nanos(ns));
        }
        for &ns in &b {
            hb.record(Duration::from_nanos(ns));
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), bulk.count());
        prop_assert_eq!(ha.sum(), bulk.sum());
        prop_assert_eq!(ha.min(), bulk.min());
        prop_assert_eq!(ha.max(), bulk.max());
        prop_assert_eq!(ha.percentiles(), bulk.percentiles());
    }
}
