//! Round-trip tests: exports parse back with the obs JSON parser and
//! the span tree they describe is internally consistent (children sum
//! to at most the parent's duration).
//!
//! The registry is process-global, so every test serializes on one
//! mutex and resets state up front.

use std::sync::Mutex;
use std::thread;
use std::time::Duration;

use pisa_obs::json::Value;
use pisa_obs::{count, report, reset, set_enabled, span, Op};

static GLOBAL: Mutex<()> = Mutex::new(());

fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn run_nested_workload() {
    set_enabled(true);
    reset();
    {
        let _parent = span("session");
        {
            let _child = span("sign_test");
            count(Op::ModExp);
            count(Op::ModExp);
            count(Op::Encrypt);
            thread::sleep(Duration::from_millis(2));
        }
        {
            let _child = span("signature_release");
            count(Op::Decrypt);
            thread::sleep(Duration::from_millis(2));
        }
    }
    set_enabled(false);
}

#[test]
fn json_export_round_trips_and_children_fit_in_parent() {
    let _guard = exclusive();
    run_nested_workload();
    let rpt = report();
    let text = rpt.to_json();

    let doc = Value::parse(&text).expect("report JSON must parse back");
    let spans = doc
        .get("spans")
        .and_then(Value::as_array)
        .expect("report has a spans array");
    assert_eq!(spans.len(), 3);

    let field = |s: &Value, k: &str| s.get(k).and_then(Value::as_u64).expect("numeric field");
    let by_name = |name: &str| {
        spans
            .iter()
            .find(|s| s.get("name").and_then(Value::as_str) == Some(name))
            .unwrap_or_else(|| panic!("span {name} missing"))
    };

    let parent = by_name("session");
    let children_sum: u64 = ["sign_test", "signature_release"]
        .iter()
        .map(|n| field(by_name(n), "dur_ns"))
        .sum();
    assert!(
        children_sum <= field(parent, "dur_ns"),
        "children ({children_sum} ns) exceed parent ({} ns)",
        field(parent, "dur_ns")
    );
    for name in ["sign_test", "signature_release"] {
        let s = by_name(name);
        assert_eq!(s.get("parent").and_then(Value::as_str), Some("session"));
        assert!(field(s, "start_ns") >= field(parent, "start_ns"));
    }

    // Counter attribution: the ops of both children roll up into the
    // parent's delta, and the phase rows aggregate them.
    let sign = by_name("sign_test");
    assert_eq!(
        sign.get("ops")
            .and_then(|o| o.get("mod_exps"))
            .and_then(Value::as_u64),
        Some(2)
    );
    assert_eq!(
        parent
            .get("ops")
            .and_then(|o| o.get("decryptions"))
            .and_then(Value::as_u64),
        Some(1)
    );
    let phases = doc
        .get("phases")
        .and_then(Value::as_array)
        .expect("phases array");
    assert_eq!(phases.len(), 3);
    assert_eq!(doc.get("spans_dropped").and_then(Value::as_u64), Some(0));
}

#[test]
fn chrome_trace_export_is_wellformed() {
    let _guard = exclusive();
    run_nested_workload();
    let rpt = report();
    let text = rpt.to_chrome_trace();

    let doc = Value::parse(&text).expect("chrome trace must parse back");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert_eq!(events.len(), 3);
    for ev in events {
        assert_eq!(ev.get("ph").and_then(Value::as_str), Some("X"));
        assert!(ev.get("ts").and_then(Value::as_f64).is_some());
        assert!(ev.get("dur").and_then(Value::as_f64).is_some());
        assert!(ev.get("tid").and_then(Value::as_u64).is_some());
        assert!(ev.get("name").and_then(Value::as_str).is_some());
    }
    // Microsecond timestamps: a 2 ms child must report dur >= 2000 µs.
    let sign = events
        .iter()
        .find(|e| e.get("name").and_then(Value::as_str) == Some("sign_test"))
        .expect("sign_test event");
    assert!(sign.get("dur").and_then(Value::as_f64).unwrap_or(0.0) >= 2000.0);
}

#[test]
fn disabled_obs_records_nothing() {
    let _guard = exclusive();
    set_enabled(false);
    reset();
    {
        let _s = span("ghost");
        count(Op::ModExp);
    }
    let rpt = report();
    assert!(rpt.spans.is_empty());
    assert!(rpt.totals.is_zero());
}

#[test]
fn spans_on_other_threads_get_distinct_tids() {
    let _guard = exclusive();
    set_enabled(true);
    reset();
    let handles: Vec<_> = (0..3)
        .map(|_| {
            thread::spawn(|| {
                let _s = span("worker");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread panicked");
    }
    set_enabled(false);
    let rpt = report();
    let mut tids: Vec<u64> = rpt.spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    assert_eq!(tids.len(), 3, "each thread should get its own tid");
}
