//! Global counters for the crypto operations priced by the paper.
//!
//! The paper's cost model (§VI) prices each protocol phase in modular
//! exponentiations; everything else is noise on top. We track the
//! operation classes Tables 2–3 break out so a phase report can say not
//! just "sign test took 40 ms" but "sign test performed 96 mod-exps".
//!
//! Two counters price what *didn't* happen: `ModExpAvoided` counts
//! exponentiations a precomputation (randomizer pool hit, fixed-base
//! table, ±1 scalar fast path) displaced from the hot path, and
//! `PoolMiss` counts pool exhaustions that fell back to the online
//! exponentiation. Together they show which optimization lever paid in a
//! perf trajectory point.
//!
//! Counters are process-global relaxed atomics. Span guards snapshot
//! the totals when they open and subtract on drop, so per-phase deltas
//! are exact for serial runs; concurrent spans each observe the ops of
//! threads running inside them (documented as approximate attribution
//! under concurrency in DESIGN.md §8).

use std::sync::atomic::{AtomicU64, Ordering};

/// A crypto operation class tracked by the observability layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Modular exponentiation (the paper's unit of cost).
    ModExp,
    /// Modular multiplication outside an exponentiation ladder.
    ModMul,
    /// Paillier encryption (also counts its internal mod-exp).
    Encrypt,
    /// Paillier decryption (CRT or standard).
    Decrypt,
    /// Ciphertext re-randomization.
    Rerandomize,
    /// A modular exponentiation that precomputation displaced from the
    /// hot path: a pooled randomizer consumed, a fixed-base table hit,
    /// or a ±1 scalar multiplication short-circuit.
    ModExpAvoided,
    /// A randomizer-pool request that found the pool empty and fell
    /// back to the online exponentiation.
    PoolMiss,
    /// A durable checkpoint written to disk (temp-write + rename).
    CheckpointWrite,
    /// A durable checkpoint loaded and verified from disk.
    CheckpointLoad,
}

static MOD_EXPS: AtomicU64 = AtomicU64::new(0);
static MOD_MULS: AtomicU64 = AtomicU64::new(0);
static ENCRYPTIONS: AtomicU64 = AtomicU64::new(0);
static DECRYPTIONS: AtomicU64 = AtomicU64::new(0);
static RERANDOMIZATIONS: AtomicU64 = AtomicU64::new(0);
static MOD_EXPS_AVOIDED: AtomicU64 = AtomicU64::new(0);
static POOL_MISSES: AtomicU64 = AtomicU64::new(0);
static CHECKPOINT_WRITES: AtomicU64 = AtomicU64::new(0);
static CHECKPOINT_LOADS: AtomicU64 = AtomicU64::new(0);

fn cell(op: Op) -> &'static AtomicU64 {
    match op {
        Op::ModExp => &MOD_EXPS,
        Op::ModMul => &MOD_MULS,
        Op::Encrypt => &ENCRYPTIONS,
        Op::Decrypt => &DECRYPTIONS,
        Op::Rerandomize => &RERANDOMIZATIONS,
        Op::ModExpAvoided => &MOD_EXPS_AVOIDED,
        Op::PoolMiss => &POOL_MISSES,
        Op::CheckpointWrite => &CHECKPOINT_WRITES,
        Op::CheckpointLoad => &CHECKPOINT_LOADS,
    }
}

/// Records one occurrence of `op`. No-op while obs is disabled.
pub fn count(op: Op) {
    if crate::enabled() {
        cell(op).fetch_add(1, Ordering::Relaxed);
    }
}

/// A snapshot of the global operation totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpTotals {
    /// Modular exponentiations.
    pub mod_exps: u64,
    /// Modular multiplications.
    pub mod_muls: u64,
    /// Paillier encryptions.
    pub encryptions: u64,
    /// Paillier decryptions.
    pub decryptions: u64,
    /// Ciphertext re-randomizations.
    pub rerandomizations: u64,
    /// Modular exponentiations displaced by precomputation.
    pub mod_exps_avoided: u64,
    /// Randomizer-pool misses that fell back to the online path.
    pub pool_misses: u64,
    /// Durable checkpoints written (temp-write + rename).
    pub checkpoint_writes: u64,
    /// Durable checkpoints loaded and verified.
    pub checkpoint_loads: u64,
}

impl OpTotals {
    /// Element-wise saturating difference `self - earlier`, used to
    /// attribute ops to the span that was open between two snapshots.
    pub fn delta_since(&self, earlier: &OpTotals) -> OpTotals {
        OpTotals {
            mod_exps: self.mod_exps.saturating_sub(earlier.mod_exps),
            mod_muls: self.mod_muls.saturating_sub(earlier.mod_muls),
            encryptions: self.encryptions.saturating_sub(earlier.encryptions),
            decryptions: self.decryptions.saturating_sub(earlier.decryptions),
            rerandomizations: self
                .rerandomizations
                .saturating_sub(earlier.rerandomizations),
            mod_exps_avoided: self
                .mod_exps_avoided
                .saturating_sub(earlier.mod_exps_avoided),
            pool_misses: self.pool_misses.saturating_sub(earlier.pool_misses),
            checkpoint_writes: self
                .checkpoint_writes
                .saturating_sub(earlier.checkpoint_writes),
            checkpoint_loads: self
                .checkpoint_loads
                .saturating_sub(earlier.checkpoint_loads),
        }
    }

    /// Element-wise saturating sum, used when aggregating spans into a
    /// phase row.
    pub fn merge(&self, other: &OpTotals) -> OpTotals {
        OpTotals {
            mod_exps: self.mod_exps.saturating_add(other.mod_exps),
            mod_muls: self.mod_muls.saturating_add(other.mod_muls),
            encryptions: self.encryptions.saturating_add(other.encryptions),
            decryptions: self.decryptions.saturating_add(other.decryptions),
            rerandomizations: self.rerandomizations.saturating_add(other.rerandomizations),
            mod_exps_avoided: self.mod_exps_avoided.saturating_add(other.mod_exps_avoided),
            pool_misses: self.pool_misses.saturating_add(other.pool_misses),
            checkpoint_writes: self
                .checkpoint_writes
                .saturating_add(other.checkpoint_writes),
            checkpoint_loads: self.checkpoint_loads.saturating_add(other.checkpoint_loads),
        }
    }

    /// True when every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == OpTotals::default()
    }
}

/// Reads the current global totals.
pub fn counters() -> OpTotals {
    OpTotals {
        mod_exps: MOD_EXPS.load(Ordering::Relaxed),
        mod_muls: MOD_MULS.load(Ordering::Relaxed),
        encryptions: ENCRYPTIONS.load(Ordering::Relaxed),
        decryptions: DECRYPTIONS.load(Ordering::Relaxed),
        rerandomizations: RERANDOMIZATIONS.load(Ordering::Relaxed),
        mod_exps_avoided: MOD_EXPS_AVOIDED.load(Ordering::Relaxed),
        pool_misses: POOL_MISSES.load(Ordering::Relaxed),
        checkpoint_writes: CHECKPOINT_WRITES.load(Ordering::Relaxed),
        checkpoint_loads: CHECKPOINT_LOADS.load(Ordering::Relaxed),
    }
}

pub(crate) fn reset_counters() {
    MOD_EXPS.store(0, Ordering::Relaxed);
    MOD_MULS.store(0, Ordering::Relaxed);
    ENCRYPTIONS.store(0, Ordering::Relaxed);
    DECRYPTIONS.store(0, Ordering::Relaxed);
    RERANDOMIZATIONS.store(0, Ordering::Relaxed);
    MOD_EXPS_AVOIDED.store(0, Ordering::Relaxed);
    POOL_MISSES.store(0, Ordering::Relaxed);
    CHECKPOINT_WRITES.store(0, Ordering::Relaxed);
    CHECKPOINT_LOADS.store(0, Ordering::Relaxed);
}
