//! Structured tracing and metrics for the PISA reproduction.
//!
//! The paper's headline evaluation (Tables 2–3, §VI) is a *per-phase*
//! cost breakdown — key conversion, blinded sign test, signature
//! release — yet an end-to-end wall clock cannot attribute a regression
//! to any one phase. This crate provides the measurement substrate:
//!
//! * hierarchical [`span`] guards with monotonic-clock timing and a
//!   thread-aware registry (every span records its thread and parent),
//! * global [`count`]ers for the cryptographic operations the paper
//!   prices individually (modular exponentiations and multiplications,
//!   encryptions, decryptions, re-randomizations), incremented from
//!   `pisa-crypto` behind its `obs` feature,
//! * fixed-bucket latency [`hist::Histogram`]s with p50/p95/p99
//!   snapshots per phase, and
//! * export of one run as a per-phase JSON report ([`Report::to_json`])
//!   or a Chrome-trace file ([`Report::to_chrome_trace`]) loadable in
//!   `chrome://tracing` / Perfetto.
//!
//! Instrumentation is **off by default**: every guard and counter first
//! checks one relaxed atomic, so the disabled cost is a load and a
//! branch. Enable with [`set_enabled`] around the region to measure.
//!
//! # Examples
//!
//! ```
//! pisa_obs::set_enabled(true);
//! pisa_obs::reset();
//! {
//!     let _phase = pisa_obs::span("sign_test");
//!     pisa_obs::count(pisa_obs::Op::ModExp);
//! }
//! let report = pisa_obs::report();
//! assert_eq!(report.phases.len(), 1);
//! assert_eq!(report.phases[0].name, "sign_test");
//! assert_eq!(report.phases[0].ops.mod_exps, 1);
//! pisa_obs::set_enabled(false);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
pub mod hist;
pub mod json;
mod registry;
mod span;

pub use counters::{count, counters, Op, OpTotals};
pub use registry::{record_span, report, reset, FinishedSpan, PhaseReport, Report};
pub use span::{span, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns instrumentation on or off globally.
///
/// While disabled (the default), [`span`] returns an inert guard and
/// [`count`] is a no-op; the only cost anywhere is one relaxed atomic
/// load.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether instrumentation is currently on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}
