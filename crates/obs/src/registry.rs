//! Global span registry and per-phase report builder.
//!
//! Finished spans land in one process-global buffer guarded by a
//! `parking_lot` mutex. The buffer is capped (a runaway loop must not
//! eat the heap); overflow increments a visible `spans_dropped`
//! counter instead of silently truncating the report.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::counters::{counters, reset_counters, OpTotals};
use crate::hist::{Histogram, Percentiles};
use crate::json::Value;

/// Hard cap on retained spans (~1M); beyond this we count drops.
const SPAN_CAP: usize = 1 << 20;

/// One closed span as recorded by the registry.
#[derive(Clone, Debug)]
pub struct FinishedSpan {
    /// Span name (phase label).
    pub name: &'static str,
    /// Name of the span that was open on the same thread, if any.
    pub parent: Option<&'static str>,
    /// Nesting depth on its thread (0 = top level).
    pub depth: usize,
    /// Small per-thread id assigned by the obs layer.
    pub tid: u64,
    /// Start offset from the registry epoch, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Crypto ops observed globally while the span was open.
    pub ops: OpTotals,
}

struct State {
    epoch: Instant,
    spans: Vec<FinishedSpan>,
    dropped: u64,
}

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(State {
            epoch: Instant::now(),
            spans: Vec::new(),
            dropped: 0,
        })
    })
}

pub(crate) fn submit(span: FinishedSpan) {
    let mut st = state().lock();
    if st.spans.len() >= SPAN_CAP {
        st.dropped = st.dropped.saturating_add(1);
    } else {
        st.spans.push(span);
    }
}

/// Records a span with externally supplied timestamps — the entry point
/// for *virtual-time* instrumentation (the discrete-event simulator
/// reports spans against its own clock rather than the wall clock).
///
/// The span lands in the same registry as wall-clock [`span`](crate::span)
/// guards and flows through the same [`report`]/JSON pipeline; it is
/// top-level (no parent) and tagged with the reserved tid 0, which real
/// threads never use. A no-op while instrumentation is disabled.
pub fn record_span(name: &'static str, start_ns: u64, dur_ns: u64) {
    if !crate::enabled() {
        return;
    }
    submit(FinishedSpan {
        name,
        parent: None,
        depth: 0,
        tid: 0,
        start_ns,
        dur_ns,
        ops: OpTotals::default(),
    });
}

pub(crate) fn epoch_offset_ns(start: Instant) -> u64 {
    let epoch = state().lock().epoch;
    let offset = start
        .checked_duration_since(epoch)
        .unwrap_or(Duration::ZERO);
    u64::try_from(offset.as_nanos()).unwrap_or(u64::MAX)
}

/// Clears all recorded spans and counters and restarts the epoch.
///
/// Call once before the region you want to measure; spans still open
/// across a reset will report against the new epoch.
pub fn reset() {
    let mut st = state().lock();
    st.epoch = Instant::now();
    st.spans.clear();
    st.dropped = 0;
    drop(st);
    reset_counters();
}

/// Aggregated statistics for all spans sharing one name.
#[derive(Clone, Debug)]
pub struct PhaseReport {
    /// Phase (span) name.
    pub name: String,
    /// Number of finished spans with this name.
    pub count: u64,
    /// Sum of their wall-clock durations.
    pub total: Duration,
    /// Mean duration.
    pub mean: Duration,
    /// p50/p95/p99 of the duration distribution.
    pub percentiles: Percentiles,
    /// Crypto ops attributed to this phase.
    pub ops: OpTotals,
}

/// A complete snapshot of one instrumented run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Per-phase aggregates, sorted by total time descending.
    pub phases: Vec<PhaseReport>,
    /// Every finished span, in completion order.
    pub spans: Vec<FinishedSpan>,
    /// Global crypto-op totals at snapshot time.
    pub totals: OpTotals,
    /// Spans discarded because the registry cap was hit.
    pub spans_dropped: u64,
}

/// Builds a [`Report`] from everything recorded since the last
/// [`reset`]. Does not clear the registry.
pub fn report() -> Report {
    // Snapshot the buffer in bounded chunks: the registry mutex sits on
    // every span-guard drop path, and cloning a full `SPAN_CAP` buffer
    // in one critical section would stall every instrumented thread for
    // the whole multi-megabyte memcpy. Submits only append (and a
    // concurrent `reset` only shrinks, which ends the loop), so chunked
    // copying still yields a consistent snapshot.
    const CHUNK: usize = 4096;
    let mut spans: Vec<FinishedSpan> = Vec::new();
    let spans_dropped = loop {
        let st = state().lock();
        let len = st.spans.len();
        if spans.len() >= len {
            break st.dropped;
        }
        let end = len.min(spans.len().saturating_add(CHUNK));
        let Some(chunk) = st.spans.get(spans.len()..end) else {
            break st.dropped;
        };
        spans.extend_from_slice(chunk);
    };

    let mut order: Vec<&'static str> = Vec::new();
    let mut hists: Vec<Histogram> = Vec::new();
    let mut ops: Vec<OpTotals> = Vec::new();
    for s in &spans {
        let idx = match order.iter().position(|n| *n == s.name) {
            Some(i) => i,
            None => {
                order.push(s.name);
                hists.push(Histogram::new());
                ops.push(OpTotals::default());
                order.len() - 1
            }
        };
        if let (Some(h), Some(o)) = (hists.get_mut(idx), ops.get_mut(idx)) {
            h.record(Duration::from_nanos(s.dur_ns));
            *o = o.merge(&s.ops);
        }
    }
    let mut phases: Vec<PhaseReport> = order
        .iter()
        .zip(hists.iter())
        .zip(ops.iter())
        .map(|((name, h), o)| PhaseReport {
            name: (*name).to_owned(),
            count: h.count(),
            total: h.sum(),
            mean: h.mean(),
            percentiles: h.percentiles(),
            ops: *o,
        })
        .collect();
    phases.sort_by_key(|p| std::cmp::Reverse(p.total));

    Report {
        phases,
        spans,
        totals: counters(),
        spans_dropped,
    }
}

fn dur_ns_value(d: Duration) -> Value {
    Value::from_u64(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
}

fn ops_value(o: &OpTotals) -> Value {
    Value::object(vec![
        ("mod_exps", Value::from_u64(o.mod_exps)),
        ("mod_muls", Value::from_u64(o.mod_muls)),
        ("encryptions", Value::from_u64(o.encryptions)),
        ("decryptions", Value::from_u64(o.decryptions)),
        ("rerandomizations", Value::from_u64(o.rerandomizations)),
        ("mod_exps_avoided", Value::from_u64(o.mod_exps_avoided)),
        ("pool_misses", Value::from_u64(o.pool_misses)),
        ("checkpoint_writes", Value::from_u64(o.checkpoint_writes)),
        ("checkpoint_loads", Value::from_u64(o.checkpoint_loads)),
    ])
}

impl Report {
    /// Renders the report as a [`Value`] tree; the caller may graft in
    /// extra sections (e.g. network metrics) before serializing.
    pub fn to_value(&self) -> Value {
        let phases = self
            .phases
            .iter()
            .map(|p| {
                Value::object(vec![
                    ("name", Value::Str(p.name.clone())),
                    ("count", Value::from_u64(p.count)),
                    ("total_ns", dur_ns_value(p.total)),
                    ("mean_ns", dur_ns_value(p.mean)),
                    ("p50_ns", dur_ns_value(p.percentiles.p50)),
                    ("p95_ns", dur_ns_value(p.percentiles.p95)),
                    ("p99_ns", dur_ns_value(p.percentiles.p99)),
                    ("ops", ops_value(&p.ops)),
                ])
            })
            .collect();
        let spans = self
            .spans
            .iter()
            .map(|s| {
                Value::object(vec![
                    ("name", Value::Str(s.name.to_owned())),
                    (
                        "parent",
                        match s.parent {
                            Some(p) => Value::Str(p.to_owned()),
                            None => Value::Null,
                        },
                    ),
                    (
                        "depth",
                        Value::from_u64(u64::try_from(s.depth).unwrap_or(u64::MAX)),
                    ),
                    ("tid", Value::from_u64(s.tid)),
                    ("start_ns", Value::from_u64(s.start_ns)),
                    ("dur_ns", Value::from_u64(s.dur_ns)),
                    ("ops", ops_value(&s.ops)),
                ])
            })
            .collect();
        Value::object(vec![
            ("phases", Value::Arr(phases)),
            ("spans", Value::Arr(spans)),
            ("totals", ops_value(&self.totals)),
            ("spans_dropped", Value::from_u64(self.spans_dropped)),
        ])
    }

    /// Serializes the report as compact JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Serializes every span as a Chrome-trace (`chrome://tracing` /
    /// Perfetto) document of complete (`"ph":"X"`) events with
    /// microsecond timestamps.
    pub fn to_chrome_trace(&self) -> String {
        let events = self
            .spans
            .iter()
            .map(|s| {
                Value::object(vec![
                    ("name", Value::Str(s.name.to_owned())),
                    ("cat", Value::Str("pisa".to_owned())),
                    ("ph", Value::Str("X".to_owned())),
                    ("ts", Value::from_f64(s.start_ns as f64 / 1_000.0)),
                    ("dur", Value::from_f64(s.dur_ns as f64 / 1_000.0)),
                    ("pid", Value::from_u64(1)),
                    ("tid", Value::from_u64(s.tid)),
                ])
            })
            .collect();
        Value::object(vec![
            ("traceEvents", Value::Arr(events)),
            ("displayTimeUnit", Value::Str("ms".to_owned())),
        ])
        .to_json()
    }

    /// Renders the per-phase table as fixed-width text, mirroring the
    /// layout of the paper's Tables 2–3 (one row per protocol phase,
    /// cost in wall time and modular exponentiations).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22} {:>7} {:>12} {:>12} {:>12} {:>9} {:>9} {:>9}\n",
            "phase", "count", "total", "mean", "p95", "mod-exps", "avoided", "encrypts"
        ));
        for p in &self.phases {
            out.push_str(&format!(
                "{:<22} {:>7} {:>12} {:>12} {:>12} {:>9} {:>9} {:>9}\n",
                p.name,
                p.count,
                fmt_dur(p.total),
                fmt_dur(p.mean),
                fmt_dur(p.percentiles.p95),
                p.ops.mod_exps,
                p.ops.mod_exps_avoided,
                p.ops.encryptions,
            ));
        }
        if self.spans_dropped > 0 {
            out.push_str(&format!(
                "(+{} spans dropped at registry cap)\n",
                self.spans_dropped
            ));
        }
        out
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}
