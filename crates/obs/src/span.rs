//! Hierarchical span guards.
//!
//! A [`span`] opens a named region on the current thread; dropping the
//! guard closes it. Nesting is tracked per thread with a thread-local
//! stack, so each finished span knows its parent and depth — enough to
//! reconstruct the tree for the Chrome-trace export and to check in
//! tests that children's durations sum to at most the parent's.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::counters::{counters, OpTotals};
use crate::registry::{self, FinishedSpan};

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    // Stack of names of currently open spans on this thread.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// A small, stable id for the current thread (assigned on first use;
/// unrelated to the OS thread id).
pub(crate) fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// Opens a span named `name` on the current thread.
///
/// The returned guard closes the span when dropped. While obs is
/// disabled (see [`crate::set_enabled`]) this returns an inert guard
/// whose construction and drop cost one relaxed atomic load each.
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { live: None };
    }
    let parent = STACK.with(|s| s.borrow().last().copied());
    let depth = STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.push(name);
        s.len() - 1
    });
    SpanGuard {
        live: Some(LiveSpan {
            name,
            parent,
            depth,
            tid: current_tid(),
            start: Instant::now(),
            start_ops: counters(),
        }),
    }
}

struct LiveSpan {
    name: &'static str,
    parent: Option<&'static str>,
    depth: usize,
    tid: u64,
    start: Instant,
    start_ops: OpTotals,
}

/// Guard returned by [`span`]; closing happens on drop.
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let elapsed = live.start.elapsed();
        let ops = counters().delta_since(&live.start_ops);
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Pop our own frame. Guards drop in LIFO order within a
            // thread, so the top is ours unless a guard was leaked
            // (mem::forget); truncating to our depth resyncs then.
            s.truncate(live.depth);
        });
        registry::submit(FinishedSpan {
            name: live.name,
            parent: live.parent,
            depth: live.depth,
            tid: live.tid,
            start_ns: registry::epoch_offset_ns(live.start),
            dur_ns: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
            ops,
        });
    }
}
