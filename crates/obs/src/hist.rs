//! Fixed-bucket latency histograms.
//!
//! One bucket per power of two of nanoseconds (64 buckets covers the
//! whole `u64` range), so recording is a leading-zeros instruction and
//! an atomic increment — cheap enough to sit on the storm hot path.
//! Quantiles are therefore accurate to within a factor of two, which
//! is ample for the paper's per-phase tables (values there differ by
//! orders of magnitude between phases).

use std::time::Duration;

const BUCKETS: usize = 64;

/// A log₂-bucketed latency histogram over nanosecond durations.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            total: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

fn bucket_index(ns: u64) -> usize {
    // 0 ns lands in bucket 0; otherwise the bucket is floor(log2(ns)),
    // clamped into range (128 - lz of a u64 value is at most 64).
    if ns == 0 {
        0
    } else {
        usize::try_from(63 - ns.leading_zeros())
            .unwrap_or(BUCKETS - 1)
            .min(BUCKETS - 1)
    }
}

fn saturating_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one duration sample.
    pub fn record(&mut self, d: Duration) {
        let ns = saturating_ns(d);
        if let Some(slot) = self.counts.get_mut(bucket_index(ns)) {
            *slot = slot.saturating_add(1);
        }
        self.total = self.total.saturating_add(1);
        self.sum_ns = self.sum_ns.saturating_add(u128::from(ns));
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all samples.
    pub fn sum(&self) -> Duration {
        duration_from_ns_u128(self.sum_ns)
    }

    /// Mean sample, or zero when empty.
    pub fn mean(&self) -> Duration {
        if self.total == 0 {
            Duration::ZERO
        } else {
            duration_from_ns_u128(self.sum_ns / u128::from(self.total))
        }
    }

    /// Smallest sample, or zero when empty.
    pub fn min(&self) -> Duration {
        if self.total == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(self.min_ns)
        }
    }

    /// Largest sample, or zero when empty.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// The value at quantile `q` in `[0, 1]`, resolved to the upper
    /// edge of the bucket holding that rank (so the estimate is within
    /// 2x of the true value and never under-reports). Zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the sample we want, 1-based; `as` saturates on floats.
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen: u64 = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                // Upper edge of bucket i is 2^(i+1) - 1 ns.
                let edge = if i + 1 >= 64 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return Duration::from_nanos(edge.min(self.max_ns).max(self.min_ns));
            }
        }
        Duration::from_nanos(self.max_ns)
    }

    /// p50/p95/p99 snapshot.
    pub fn percentiles(&self) -> Percentiles {
        Percentiles {
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.total = self.total.saturating_add(other.total);
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// p50/p95/p99 triple extracted from a [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Percentiles {
    /// Median.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
}

fn duration_from_ns_u128(ns: u128) -> Duration {
    let secs = ns / 1_000_000_000;
    let sub = u32::try_from(ns % 1_000_000_000).unwrap_or(0);
    match u64::try_from(secs) {
        Ok(s) => Duration::new(s, sub),
        Err(_) => Duration::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn quantiles_are_ordered_and_bracket_samples() {
        let mut h = Histogram::new();
        for us in [10u64, 20, 30, 40, 1000] {
            h.record(Duration::from_micros(us));
        }
        let p = h.percentiles();
        assert!(p.p50 <= p.p95 && p.p95 <= p.p99);
        assert!(p.p50 >= h.min() && p.p99 <= h.max().max(p.p99));
        // Upper-edge estimate never under-reports the true median (30 µs).
        assert!(p.p50 >= Duration::from_micros(30));
        // ...and is within 2x.
        assert!(p.p50 <= Duration::from_micros(64));
    }

    #[test]
    fn extreme_samples_do_not_panic() {
        let mut h = Histogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Duration::from_nanos(u64::MAX));
        assert!(h.quantile(1.0) >= h.quantile(0.0));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(Duration::from_millis(1));
        b.record(Duration::from_millis(2));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Duration::from_millis(2));
        assert_eq!(a.min(), Duration::from_millis(1));
    }
}
