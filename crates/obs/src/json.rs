//! Minimal JSON document model, writer, and parser.
//!
//! The workspace vendors no `serde_json`, so the obs layer carries its
//! own ~300-line JSON kernel: enough to write the metrics report and
//! Chrome-trace files, and to parse them back in round-trip tests.
//! Numbers are `f64` (every value we emit is well below 2⁵³, so
//! integers round-trip exactly); non-finite floats serialize as
//! `null` since JSON has no NaN.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn object(fields: Vec<(&str, Value)>) -> Value {
        Value::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Wraps a `u64` (exact for values below 2⁵³).
    pub fn from_u64(v: u64) -> Value {
        Value::Num(v as f64)
    }

    /// Wraps an `f64`.
    pub fn from_f64(v: f64) -> Value {
        Value::Num(v)
    }

    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a `u64`, if a number (saturating, NaN → 0).
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n as u64)
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Value::Str(s) => write_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Rejects trailing garbage and nesting
    /// deeper than an internal limit; never panics.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(ParseError {
                pos: p.pos,
                what: "trailing characters",
            });
        }
        Ok(v)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure: byte offset plus a static description.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What the parser expected or rejected.
    pub what: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.pos, self.what)
    }
}

impl std::error::Error for ParseError {}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        let end = self.pos.saturating_add(lit.len());
        if self.bytes.get(self.pos..end) == Some(lit.as_bytes()) {
            self.pos = end;
            true
        } else {
            false
        }
    }

    fn err(&self, what: &'static str) -> ParseError {
        ParseError {
            pos: self.pos,
            what,
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat("null") => Ok(Value::Null),
            Some(b't') if self.eat("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|b| std::str::from_utf8(b).ok())
            .unwrap_or("");
        text.parse::<f64>().map(Value::Num).map_err(|_| ParseError {
            pos: start,
            what: "malformed number",
        })
    }

    fn string(&mut self) -> Result<String, ParseError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected '\"'"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Lone surrogates degrade to U+FFFD; the
                            // writer never emits surrogate escapes.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so
                    // boundaries are valid).
                    let rest = self
                        .bytes
                        .get(self.pos..)
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .unwrap_or("");
                    match rest.chars().next() {
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => return Err(self.err("invalid utf-8")),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("bad \\u escape")),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            fields.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_parses_scalars() {
        for (v, text) in [
            (Value::Null, "null"),
            (Value::Bool(true), "true"),
            (Value::from_u64(42), "42"),
            (Value::Str("a\"b\\c\nd".to_owned()), "\"a\\\"b\\\\c\\nd\""),
        ] {
            assert_eq!(v.to_json(), text);
            assert_eq!(Value::parse(text), Ok(v));
        }
    }

    #[test]
    fn round_trips_nested_document() {
        let doc = Value::object(vec![
            ("name", Value::Str("sign_test".to_owned())),
            ("dur_ns", Value::from_u64(123_456_789)),
            ("frac", Value::from_f64(0.5)),
            (
                "children",
                Value::Arr(vec![Value::from_u64(1), Value::Null]),
            ),
        ]);
        let text = doc.to_json();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(
            back.get("dur_ns").and_then(Value::as_u64),
            Some(123_456_789)
        );
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\q\"", "\u{1}",
        ] {
            assert!(Value::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parses_unicode_escapes_and_whitespace() {
        let v = Value::parse(" { \"k\" : \"\\u0041\\u00e9\" } ").unwrap();
        assert_eq!(v.get("k").and_then(Value::as_str), Some("Aé"));
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Value::from_f64(f64::NAN).to_json(), "null");
        assert_eq!(Value::from_f64(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let mut s = String::new();
        for _ in 0..500 {
            s.push('[');
        }
        assert!(Value::parse(&s).is_err());
    }
}
