//! Arbitrary-precision integer arithmetic for the PISA reproduction.
//!
//! The original PISA prototype was built on the GNU MP library. This crate
//! is a from-scratch substitute providing everything the Paillier
//! cryptosystem and RSA signatures need:
//!
//! * [`Ubig`] — unsigned big integers with schoolbook and Karatsuba
//!   multiplication, Knuth Algorithm-D division, shifts and bit operations.
//! * [`Ibig`] — signed big integers (sign–magnitude) used for the
//!   centered-lift plaintext domain of Paillier.
//! * [`modular`] — Montgomery-form modular exponentiation, modular
//!   inverses, and binary GCD.
//! * [`prime`] — Miller–Rabin testing and random prime generation.
//! * [`random`] — uniform sampling of big integers from any `rand::Rng`.
//!
//! # Examples
//!
//! ```
//! use pisa_bigint::{Ubig, modular};
//!
//! let base = Ubig::from(7u64);
//! let exp = Ubig::from(560u64);
//! let modulus = Ubig::from(561u64); // Carmichael number
//! assert_eq!(modular::mod_pow(&base, &exp, &modulus), Ubig::one());
//! ```

// `deny` rather than `forbid`: the zeroize module needs volatile writes
// for its drop-wipe and carries the crate's only #![allow(unsafe_code)].
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod arith;
mod cmp;
mod convert;
mod fmt;
mod ibig;
pub mod modular;
pub mod prime;
pub mod random;
mod serde_impl;
mod ubig;
pub mod zeroize;

pub use convert::ParseUbigError;
pub use ibig::{Ibig, Sign};
pub use ubig::Ubig;

/// Number of bits in one limb of a [`Ubig`].
pub const LIMB_BITS: u32 = 64;
