//! Modular arithmetic: Montgomery-form exponentiation, modular inverse,
//! GCD and LCM.
//!
//! The workhorse is [`MontCtx`], a reusable Montgomery reduction context
//! keyed to one odd modulus. Paillier spends nearly all of its time inside
//! [`MontCtx::pow`], so the context precomputes `R mod n`, `R² mod n` and
//! `-n⁻¹ mod 2⁶⁴` once and reuses them across every exponentiation with
//! that modulus.
//!
//! # Examples
//!
//! ```
//! use pisa_bigint::{Ubig, modular};
//!
//! let n = Ubig::from(101u64); // odd modulus
//! let x = modular::mod_pow(&Ubig::from(2u64), &Ubig::from(100u64), &n);
//! assert_eq!(x, Ubig::one()); // Fermat
//! ```

mod fixed_base;
mod gcd;
mod inv;
mod mont;
mod pow;

pub use fixed_base::FixedBasePow;
pub use gcd::{gcd, lcm};
pub use inv::mod_inverse;
#[doc(hidden)]
pub use mont::{mont_mul_count, reset_mont_mul_count};
pub use mont::{MontCtx, MontScratch};
pub use pow::mod_pow;

use crate::Ubig;

/// `a * b mod n` via full multiplication and reduction.
///
/// For one-off products this beats converting into and out of Montgomery
/// form; for long products reuse a [`MontCtx`].
///
/// # Panics
///
/// Panics if `n` is zero.
///
/// ```
/// use pisa_bigint::{Ubig, modular};
/// let r = modular::mod_mul(&Ubig::from(7u64), &Ubig::from(8u64), &Ubig::from(10u64));
/// assert_eq!(r, Ubig::from(6u64));
/// ```
pub fn mod_mul(a: &Ubig, b: &Ubig, n: &Ubig) -> Ubig {
    (a * b) % n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mod_mul_reduces() {
        let n = Ubig::from(97u64);
        for a in 0..20u64 {
            for b in 0..20u64 {
                assert_eq!(
                    mod_mul(&Ubig::from(a), &Ubig::from(b), &n),
                    Ubig::from(a * b % 97)
                );
            }
        }
    }
}
