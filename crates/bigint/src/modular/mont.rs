//! Montgomery reduction context.

use crate::arith::{mul_limbs, mul_limbs_into, sub_assign_slice};
use crate::Ubig;
use std::cell::Cell;

thread_local! {
    /// Montgomery multiplications performed on this thread, across every
    /// path (scratch kernel and reference). Drives the constant-shape
    /// property tests; not a public API.
    static MONT_MUL_COUNT: Cell<u64> = const { Cell::new(0) };
}

/// Resets this thread's Montgomery-multiplication counter. Test support
/// for the constant-shape property suite; not a stable API.
#[doc(hidden)]
pub fn reset_mont_mul_count() {
    MONT_MUL_COUNT.with(|c| c.set(0));
}

/// Reads this thread's Montgomery-multiplication counter. Test support
/// for the constant-shape property suite; not a stable API.
#[doc(hidden)]
pub fn mont_mul_count() -> u64 {
    MONT_MUL_COUNT.with(|c| c.get())
}

#[inline]
fn bump_mul_count() {
    MONT_MUL_COUNT.with(|c| c.set(c.get().wrapping_add(1)));
}

/// Reusable working memory for Montgomery operations.
///
/// Holds the `2k + 1`-limb product/REDC buffer plus two `k`-limb ladder
/// registers, so a chain of multiplications — or a whole exponentiation —
/// performs no per-step allocation. Obtain one from [`MontCtx::scratch`]
/// and pass it to every call against that context; a scratch self-resizes
/// if reused across contexts of different widths, so sharing one across
/// the `n` and `n²` contexts of a key is fine.
///
/// The buffers hold residues of whatever passed through them last, which
/// may derive from secret exponents; [`crate::zeroize::Zeroize`] wipes
/// them, and long-lived holders working under secret moduli (CRT
/// decryption) should zeroize on teardown.
pub struct MontScratch {
    /// `2k + 1`-limb product / REDC accumulator.
    pub(super) prod: Vec<u64>,
    /// `k`-limb ladder register (current value).
    pub(super) acc: Vec<u64>,
    /// `k`-limb ladder register (multiplication target, swapped with `acc`).
    pub(super) tmp: Vec<u64>,
}

impl MontScratch {
    /// Grows (or trims the registers of) this scratch to fit width `k`.
    pub(super) fn fit(&mut self, k: usize) {
        if self.prod.len() < 2 * k + 1 {
            self.prod.resize(2 * k + 1, 0);
        }
        if self.acc.len() != k {
            self.acc.resize(k, 0);
        }
        if self.tmp.len() != k {
            self.tmp.resize(k, 0);
        }
    }
}

impl std::fmt::Debug for MontScratch {
    /// Redacted: scratch contents are working residues of (possibly
    /// secret-derived) intermediates and never belong in logs.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MontScratch")
            .field("limbs", &self.acc.len())
            .finish_non_exhaustive()
    }
}

impl crate::zeroize::Zeroize for MontScratch {
    fn zeroize(&mut self) {
        self.prod.zeroize();
        self.acc.zeroize();
        self.tmp.zeroize();
    }
}

/// A reusable Montgomery multiplication context for one odd modulus.
///
/// Construction costs two divisions; every subsequent multiplication and
/// exponentiation avoids division entirely (REDC only). Paillier reuses a
/// single context per `n²` across an entire protocol run.
///
/// # Examples
///
/// ```
/// use pisa_bigint::{Ubig, modular::MontCtx};
///
/// let n = Ubig::from(97u64);
/// let ctx = MontCtx::new(&n).expect("odd modulus");
/// let r = ctx.pow(&Ubig::from(5u64), &Ubig::from(96u64));
/// assert_eq!(r, Ubig::one());
/// ```
#[derive(Debug, Clone)]
pub struct MontCtx {
    /// The modulus `n` (odd, > 1).
    n: Ubig,
    /// Limb count of `n`; all Montgomery residues use this width.
    k: usize,
    /// `-n⁻¹ mod 2⁶⁴`.
    n0_inv: u64,
    /// `R mod n` where `R = 2^(64k)` — the Montgomery form of 1.
    r_mod_n: Ubig,
    /// `R² mod n`, used to convert into Montgomery form.
    r2_mod_n: Ubig,
}

impl MontCtx {
    /// Builds a context for the odd modulus `n > 1`; `None` if `n` is even
    /// or `n <= 1`.
    pub fn new(n: &Ubig) -> Option<Self> {
        if n.is_even() || n.is_one() || n.is_zero() {
            return None;
        }
        let k = n.as_limbs().len();
        let r = Ubig::one() << (64 * k);
        let r_mod_n = &r % n;
        let r2_mod_n = (&r_mod_n * &r_mod_n) % n;
        let n0_inv = inv_limb(n.as_limbs()[0]).wrapping_neg();
        Some(MontCtx {
            n: n.clone(),
            k,
            n0_inv,
            r_mod_n,
            r2_mod_n,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &Ubig {
        &self.n
    }

    /// Limb width of this context's residues.
    pub(crate) fn limb_width(&self) -> usize {
        self.k
    }

    /// Allocates working memory sized for this context. One scratch
    /// serves any number of sequential operations; allocate one per
    /// thread for parallel work.
    pub fn scratch(&self) -> MontScratch {
        MontScratch {
            prod: vec![0u64; 2 * self.k + 1],
            acc: vec![0u64; self.k],
            tmp: vec![0u64; self.k],
        }
    }

    /// Converts `a < n` into Montgomery form (`a · R mod n`).
    pub fn to_mont(&self, a: &Ubig, s: &mut MontScratch) -> Ubig {
        debug_assert!(a < &self.n);
        self.mont_mul(a, &self.r2_mod_n, s)
    }

    /// Converts a Montgomery-form residue back to the ordinary range.
    pub fn from_mont(&self, a: &Ubig, s: &mut MontScratch) -> Ubig {
        s.fit(self.k);
        let mut out = vec![0u64; self.k];
        self.mont_mul_into(a.as_limbs(), &[1u64], &mut out, &mut s.prod);
        Ubig::from_limbs(out)
    }

    /// The Montgomery form of 1 (`R mod n`) — the neutral element for
    /// [`MontCtx::mont_mul`] chains and the zero-digit table entry.
    pub fn one_mont(&self) -> Ubig {
        self.r_mod_n.clone()
    }

    /// REDC(a·b): `a · b · R⁻¹ mod n` for Montgomery-form operands,
    /// without allocating working memory (only the result vector).
    pub fn mont_mul(&self, a: &Ubig, b: &Ubig, s: &mut MontScratch) -> Ubig {
        s.fit(self.k);
        let mut out = vec![0u64; self.k];
        self.mont_mul_into(a.as_limbs(), b.as_limbs(), &mut out, &mut s.prod);
        Ubig::from_limbs(out)
    }

    /// REDC(a·b) via the original allocating path: fresh product vector,
    /// `resize`, `to_vec`. Kept verbatim as the differential baseline the
    /// scratch kernel is property-tested against; no hot path uses it.
    pub fn mont_mul_reference(&self, a: &Ubig, b: &Ubig) -> Ubig {
        bump_mul_count();
        let k = self.k;
        let nl = self.n.as_limbs();
        // t = a * b, extended to 2k+1 limbs for reduction carries.
        let mut t = mul_limbs(a.as_limbs(), b.as_limbs());
        t.resize(2 * k + 1, 0);

        for i in 0..k {
            let m = t[i].wrapping_mul(self.n0_inv);
            // t += m * n << (64*i)
            let mut carry = 0u128;
            for (j, &nj) in nl.iter().enumerate() {
                let cur = t[i + j] as u128 + m as u128 * nj as u128 + carry;
                t[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut idx = i + k;
            while carry != 0 {
                let cur = t[idx] as u128 + carry;
                t[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }

        // Result is t >> (64*k), at most one subtraction from n away.
        let mut res: Vec<u64> = t[k..].to_vec();
        if ge_slices(&res, nl) {
            let borrow = sub_assign_slice(&mut res, nl);
            debug_assert_eq!(borrow, 0);
        }
        Ubig::from_limbs(res)
    }

    /// REDC(a·b) into `out` (exactly `k` limbs, fixed width, value < n),
    /// using `prod` as the `2k + 1`-limb working buffer. Operand slices
    /// may be narrower than `k` limbs (normalized values) or exactly `k`
    /// (fixed-width table entries with zero high limbs) — both reduce
    /// identically. `out` must not alias `prod`.
    pub(crate) fn mont_mul_into(&self, a: &[u64], b: &[u64], out: &mut [u64], prod: &mut [u64]) {
        let k = self.k;
        debug_assert!(a.len() <= k && b.len() <= k, "operand wider than modulus");
        debug_assert_eq!(out.len(), k, "output must be modulus-width");
        let prod = &mut prod[..2 * k + 1];
        bump_mul_count();
        mul_limbs_into(a, b, prod);

        let nl = self.n.as_limbs();
        for i in 0..k {
            let m = prod[i].wrapping_mul(self.n0_inv);
            // prod += m * n << (64*i)
            let mut carry = 0u128;
            for (j, &nj) in nl.iter().enumerate() {
                let cur = prod[i + j] as u128 + m as u128 * nj as u128 + carry;
                prod[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut idx = i + k;
            while carry != 0 {
                let cur = prod[idx] as u128 + carry;
                prod[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }

        // Result is prod >> (64*k): k+1 limbs with top limb in {0, 1}, at
        // most one subtraction from n away. After the conditional
        // subtraction the value is < n and fits in k limbs.
        let res = &mut prod[k..];
        if ge_slices(res, nl) {
            let borrow = sub_assign_slice(res, nl);
            debug_assert_eq!(borrow, 0);
        }
        out.copy_from_slice(&prod[k..2 * k]);
        debug_assert_eq!(prod[2 * k], 0, "reduced value must fit k limbs");
    }

    /// `base^exp mod n` using fixed-window exponentiation in Montgomery
    /// form, with the window width adapted to the exponent's bit length.
    ///
    /// Every window multiplies unconditionally — zero windows multiply by
    /// the Montgomery form of 1 instead of being skipped — so the
    /// multiplication count depends only on `exp.bit_len()`, not on which
    /// exponent bits are set (the square-and-multiply timing leak).
    ///
    /// `base` need not be reduced.
    pub fn pow(&self, base: &Ubig, exp: &Ubig) -> Ubig {
        let mut s = self.scratch();
        self.pow_with(base, exp, &mut s)
    }

    /// [`MontCtx::pow`] reusing caller-provided scratch, for call sites
    /// that exponentiate in a loop (matrix rows, pool refills).
    pub fn pow_with(&self, base: &Ubig, exp: &Ubig, s: &mut MontScratch) -> Ubig {
        // Guard on exponent *presence* only; secret exponents (λ, p−1,
        // q−1, n) are never zero, so this branch is taken solely for
        // public zero-exponent calls.
        if exp.is_zero() {
            return Ubig::one() % &self.n;
        }
        // Skip the reduction division when the base is already < n —
        // matrix entries, table outputs and pooled randomizers always are.
        let reduced;
        let base = if base < &self.n {
            base
        } else {
            reduced = base % &self.n;
            &reduced
        };
        let base_m = self.to_mont(base, s);
        let acc_m = self.pow_mont(&base_m, exp, s);
        self.from_mont(&acc_m, s)
    }

    /// `base_m^exp` for a base already in Montgomery form, returning the
    /// result **still in Montgomery form** so chained operations (the
    /// `(1 + m·n) · r^n` encryption product, rerandomization factors)
    /// skip the per-step `to_mont`/`from_mont` round trip.
    ///
    /// The window width is chosen from `exp.bit_len()` alone and every
    /// window multiplies unconditionally, so the multiplication count is
    /// a pure function of the exponent's bit length (constant shape).
    pub fn pow_mont(&self, base_m: &Ubig, exp: &Ubig, s: &mut MontScratch) -> Ubig {
        let bits = exp.bit_len();
        // Zero-exponent guard; see `pow_with`.
        if bits == 0 {
            return self.one_mont();
        }
        let k = self.k;
        s.fit(k);
        // Selects on the exponent's *bit length* only — public for every
        // exponent in the protocol (n has the key width, λ-derived
        // exponents the prime width) — never on which bits are set.
        let w = window_width(bits);
        let table_len = 1usize << w;

        // Flat fixed-width table: entry d at [d*k, (d+1)*k) holds
        // base^d in Montgomery form. One allocation per exponentiation;
        // `FixedBasePow` hoists even that out for repeated bases.
        let mut table = vec![0u64; table_len * k];
        copy_padded(&mut table[..k], self.r_mod_n.as_limbs());
        copy_padded(&mut table[k..2 * k], base_m.as_limbs());
        for d in 2..table_len {
            let (lo, hi) = table.split_at_mut(d * k);
            self.mont_mul_into(
                &lo[(d - 1) * k..],
                base_m.as_limbs(),
                &mut hi[..k],
                &mut s.prod,
            );
        }

        let windows = bits.div_ceil(w);
        let top = digit(exp, windows - 1, w);
        s.acc.copy_from_slice(&table[top * k..(top + 1) * k]);
        for win in (0..windows - 1).rev() {
            for _ in 0..w {
                self.mont_mul_into(&s.acc, &s.acc, &mut s.tmp, &mut s.prod);
                std::mem::swap(&mut s.acc, &mut s.tmp);
            }
            // Zero digits multiply by table[0] (the Montgomery 1) instead
            // of being skipped: the count stays a function of bit length.
            let d = digit(exp, win, w);
            self.mont_mul_into(&s.acc, &table[d * k..(d + 1) * k], &mut s.tmp, &mut s.prod);
            std::mem::swap(&mut s.acc, &mut s.tmp);
        }
        Ubig::from_limbs(s.acc.clone())
    }

    /// `a * b mod n` for already-reduced operands, via Montgomery form.
    pub fn mul(&self, a: &Ubig, b: &Ubig) -> Ubig {
        let mut s = self.scratch();
        let am = self.to_mont(a, &mut s);
        let bm = self.to_mont(b, &mut s);
        let prod_m = self.mont_mul(&am, &bm, &mut s);
        self.from_mont(&prod_m, &mut s)
    }
}

impl crate::zeroize::Zeroize for MontCtx {
    /// Wipes the modulus and precomputed residues. A context built for a
    /// secret modulus (`p²`, `q²` in CRT decryption) reveals that modulus,
    /// so secret-key `Drop` impls wipe their contexts too.
    fn zeroize(&mut self) {
        self.n.zeroize();
        self.r_mod_n.zeroize();
        self.r2_mod_n.zeroize();
        self.n0_inv.zeroize();
        self.k.zeroize();
    }
}

/// Window width for an exponent of the given bit length. The tiers trade
/// table-build cost (2^w − 2 multiplications) against ladder multiplies
/// (⌈bits/w⌉ − 1 windows); a pure function of the public bit length.
fn window_width(bits: usize) -> usize {
    if bits <= 6 {
        1
    } else if bits <= 24 {
        2
    } else if bits <= 80 {
        3
    } else {
        4
    }
}

/// Extracts the `idx`-th `w`-bit digit of `e` (little-endian digit order).
pub(super) fn digit(e: &Ubig, idx: usize, w: usize) -> usize {
    let bit = idx * w;
    let limb = bit / 64;
    let off = bit % 64;
    let limbs = e.as_limbs();
    let lo = limbs.get(limb).copied().unwrap_or(0) >> off;
    let val = if off + w > 64 {
        lo | (limbs.get(limb + 1).copied().unwrap_or(0) << (64 - off))
    } else {
        lo
    };
    val as usize & ((1 << w) - 1)
}

/// Copies `src` into `dst` and zero-fills the remaining high limbs.
pub(super) fn copy_padded(dst: &mut [u64], src: &[u64]) {
    dst[..src.len()].copy_from_slice(src);
    dst[src.len()..].fill(0);
}

/// Compares two little-endian limb slices (possibly unnormalized).
fn ge_slices(a: &[u64], b: &[u64]) -> bool {
    let alen = effective_len(a);
    let blen = effective_len(b);
    if alen != blen {
        return alen > blen;
    }
    for i in (0..alen).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

fn effective_len(a: &[u64]) -> usize {
    let mut len = a.len();
    while len > 0 && a[len - 1] == 0 {
        len -= 1;
    }
    len
}

/// Inverse of an odd limb modulo 2⁶⁴ by Newton–Hensel lifting.
fn inv_limb(x: u64) -> u64 {
    debug_assert!(x & 1 == 1);
    let mut inv = x; // correct mod 2^3 for odd x
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    }
    debug_assert_eq!(x.wrapping_mul(inv), 1);
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_even_and_trivial_moduli() {
        assert!(MontCtx::new(&Ubig::from(10u64)).is_none());
        assert!(MontCtx::new(&Ubig::zero()).is_none());
        assert!(MontCtx::new(&Ubig::one()).is_none());
        assert!(MontCtx::new(&Ubig::from(9u64)).is_some());
    }

    #[test]
    fn inv_limb_small() {
        for x in [1u64, 3, 5, 0xdeadbeef | 1, u64::MAX] {
            assert_eq!(x.wrapping_mul(inv_limb(x)), 1);
        }
    }

    #[test]
    fn pow_matches_naive_small() {
        let n = Ubig::from(1000003u64);
        let ctx = MontCtx::new(&n).unwrap();
        for base in [0u64, 1, 2, 999, 1000002] {
            for exp in [0u64, 1, 2, 3, 17, 65537] {
                let expected = naive_pow(base, exp, 1000003);
                assert_eq!(
                    ctx.pow(&Ubig::from(base), &Ubig::from(exp)),
                    Ubig::from(expected),
                    "{base}^{exp}"
                );
            }
        }
    }

    #[test]
    fn pow_with_unreduced_base() {
        let n = Ubig::from(101u64);
        let ctx = MontCtx::new(&n).unwrap();
        assert_eq!(
            ctx.pow(&Ubig::from(102u64), &Ubig::from(5u64)),
            Ubig::from(1u64)
        );
    }

    #[test]
    fn mul_matches_mod() {
        let n = Ubig::from(999999937u64);
        let ctx = MontCtx::new(&n).unwrap();
        let a = Ubig::from(123456789u64);
        let b = Ubig::from(987654321u64);
        assert_eq!(ctx.mul(&a, &b), (&a * &b) % &n);
    }

    #[test]
    fn multi_limb_fermat() {
        // 2^127 - 1 is a Mersenne prime spanning two limbs.
        let p = (Ubig::one() << 127) - Ubig::one();
        let ctx = MontCtx::new(&p).unwrap();
        let exp = &p - &Ubig::one();
        assert_eq!(ctx.pow(&Ubig::from(3u64), &exp), Ubig::one());
    }

    #[test]
    fn scratch_kernel_matches_reference() {
        let p = (Ubig::one() << 127) - Ubig::one();
        let ctx = MontCtx::new(&p).unwrap();
        let mut s = ctx.scratch();
        let mut x = Ubig::from(0x9e3779b97f4a7c15u64);
        for _ in 0..20 {
            let y = (&x * &x + Ubig::one()) % &p;
            assert_eq!(ctx.mont_mul(&x, &y, &mut s), ctx.mont_mul_reference(&x, &y));
            x = y;
        }
    }

    #[test]
    fn mont_form_round_trip_and_chain() {
        let p = (Ubig::one() << 127) - Ubig::one();
        let ctx = MontCtx::new(&p).unwrap();
        let mut s = ctx.scratch();
        let a = Ubig::from(123456789u64);
        let b = Ubig::from(987654321u64);
        let am = ctx.to_mont(&a, &mut s);
        assert_eq!(ctx.from_mont(&am, &mut s), a);
        // Chained product stays in Montgomery form until the end.
        let bm = ctx.to_mont(&b, &mut s);
        let abm = ctx.mont_mul(&am, &bm, &mut s);
        assert_eq!(ctx.from_mont(&abm, &mut s), (&a * &b) % &p);
        // one_mont is neutral.
        assert_eq!(ctx.mont_mul(&am, &ctx.one_mont(), &mut s), am);
    }

    #[test]
    fn pow_mont_matches_pow() {
        let p = (Ubig::one() << 127) - Ubig::one();
        let ctx = MontCtx::new(&p).unwrap();
        let mut s = ctx.scratch();
        let base = Ubig::from(0xfeedfaceu64);
        for exp in [1u64, 2, 5, 63, 64, 65, 0xffff_ffff_ffff_ffff] {
            let e = Ubig::from(exp);
            let bm = ctx.to_mont(&base, &mut s);
            let rm = ctx.pow_mont(&bm, &e, &mut s);
            assert_eq!(ctx.from_mont(&rm, &mut s), ctx.pow(&base, &e), "exp {exp}");
        }
    }

    #[test]
    fn all_window_widths_agree_with_naive() {
        // Bit lengths landing in each window tier: 5 → w=1, 17 → w=2,
        // 65 → w=3, 127 → w=4.
        let p = (Ubig::one() << 127) - Ubig::one();
        let ctx = MontCtx::new(&p).unwrap();
        let base = Ubig::from(3u64);
        for bits in [5usize, 17, 65, 127] {
            let exp = (Ubig::one() << (bits - 1)) + Ubig::from(0b1011u64);
            let expect = naive_square_multiply(&base, &exp, &p);
            assert_eq!(ctx.pow(&base, &exp), expect, "bits {bits}");
        }
    }

    #[test]
    fn scratch_reusable_across_widths() {
        let small = MontCtx::new(&Ubig::from(1000003u64)).unwrap();
        let big = MontCtx::new(&((Ubig::one() << 127) - Ubig::one())).unwrap();
        let mut s = big.scratch();
        let e = Ubig::from(65537u64);
        assert_eq!(
            small.pow_with(&Ubig::from(2u64), &e, &mut s),
            small.pow(&Ubig::from(2u64), &e)
        );
        assert_eq!(
            big.pow_with(&Ubig::from(2u64), &e, &mut s),
            big.pow(&Ubig::from(2u64), &e)
        );
    }

    #[test]
    fn mul_count_pure_function_of_bit_len() {
        let p = (Ubig::one() << 127) - Ubig::one();
        let ctx = MontCtx::new(&p).unwrap();
        // Same bit length, different Hamming weight → identical counts.
        let heavy = (Ubig::one() << 90) - Ubig::one();
        let light = Ubig::one() << 89;
        assert_eq!(heavy.bit_len(), light.bit_len());
        reset_mont_mul_count();
        ctx.pow(&Ubig::from(7u64), &heavy);
        let c_heavy = mont_mul_count();
        reset_mont_mul_count();
        ctx.pow(&Ubig::from(7u64), &light);
        let c_light = mont_mul_count();
        assert_eq!(c_heavy, c_light);
    }

    fn naive_square_multiply(base: &Ubig, exp: &Ubig, n: &Ubig) -> Ubig {
        let mut acc = Ubig::one();
        let mut b = base % n;
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                acc = (&acc * &b) % n;
            }
            b = (&b * &b) % n;
        }
        acc
    }

    fn naive_pow(b: u64, mut e: u64, m: u64) -> u64 {
        let mut acc = 1u128;
        let mut bb = b as u128 % m as u128;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc * bb % m as u128;
            }
            bb = bb * bb % m as u128;
            e >>= 1;
        }
        acc as u64
    }
}
