//! Montgomery reduction context.

use crate::arith::{mul_limbs, sub_assign_slice};
use crate::Ubig;

/// A reusable Montgomery multiplication context for one odd modulus.
///
/// Construction costs two divisions; every subsequent multiplication and
/// exponentiation avoids division entirely (REDC only). Paillier reuses a
/// single context per `n²` across an entire protocol run.
///
/// # Examples
///
/// ```
/// use pisa_bigint::{Ubig, modular::MontCtx};
///
/// let n = Ubig::from(97u64);
/// let ctx = MontCtx::new(&n).expect("odd modulus");
/// let r = ctx.pow(&Ubig::from(5u64), &Ubig::from(96u64));
/// assert_eq!(r, Ubig::one());
/// ```
#[derive(Debug, Clone)]
pub struct MontCtx {
    /// The modulus `n` (odd, > 1).
    n: Ubig,
    /// Limb count of `n`; all Montgomery residues use this width.
    k: usize,
    /// `-n⁻¹ mod 2⁶⁴`.
    n0_inv: u64,
    /// `R mod n` where `R = 2^(64k)` — the Montgomery form of 1.
    r_mod_n: Ubig,
    /// `R² mod n`, used to convert into Montgomery form.
    r2_mod_n: Ubig,
}

impl MontCtx {
    /// Builds a context for the odd modulus `n > 1`; `None` if `n` is even
    /// or `n <= 1`.
    pub fn new(n: &Ubig) -> Option<Self> {
        if n.is_even() || n.is_one() || n.is_zero() {
            return None;
        }
        let k = n.as_limbs().len();
        let r = Ubig::one() << (64 * k);
        let r_mod_n = &r % n;
        let r2_mod_n = (&r_mod_n * &r_mod_n) % n;
        let n0_inv = inv_limb(n.as_limbs()[0]).wrapping_neg();
        Some(MontCtx {
            n: n.clone(),
            k,
            n0_inv,
            r_mod_n,
            r2_mod_n,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &Ubig {
        &self.n
    }

    /// `base^exp mod n` using 4-bit fixed-window exponentiation in
    /// Montgomery form.
    ///
    /// Every window multiplies unconditionally — zero windows multiply by
    /// the Montgomery form of 1 instead of being skipped — so the
    /// multiplication count depends only on `exp.bit_len()`, not on which
    /// exponent bits are set (the square-and-multiply timing leak).
    ///
    /// `base` need not be reduced.
    pub fn pow(&self, base: &Ubig, exp: &Ubig) -> Ubig {
        // pisa-lint: allow(secret-branching): guard on exponent *presence* only;
        // secret exponents (λ, p−1, q−1, n) are never zero, so this branch is
        // taken solely for public zero-exponent calls.
        if exp.is_zero() {
            return Ubig::one() % &self.n;
        }
        let base = base % &self.n;
        let base_m = self.to_mont(&base);

        // Precompute base^0..base^15 in Montgomery form.
        let mut table = Vec::with_capacity(16);
        table.push(self.r_mod_n.clone()); // 1 in Montgomery form
        table.push(base_m.clone());
        for i in 2..16 {
            table.push(self.mont_mul(&table[i - 1], &base_m));
        }

        let bits = exp.bit_len();
        let windows = bits.div_ceil(4);
        let mut acc = table[nibble(exp, windows - 1)].clone();
        for w in (0..windows - 1).rev() {
            acc = self.mont_mul(&acc, &acc);
            acc = self.mont_mul(&acc, &acc);
            acc = self.mont_mul(&acc, &acc);
            acc = self.mont_mul(&acc, &acc);
            let d = nibble(exp, w);
            acc = self.mont_mul(&acc, &table[d]);
        }
        self.unmont(&acc)
    }

    /// `a * b mod n` for already-reduced operands, via Montgomery form.
    pub fn mul(&self, a: &Ubig, b: &Ubig) -> Ubig {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.unmont(&self.mont_mul(&am, &bm))
    }

    fn to_mont(&self, a: &Ubig) -> Ubig {
        debug_assert!(a < &self.n);
        self.mont_mul(a, &self.r2_mod_n)
    }

    fn unmont(&self, a: &Ubig) -> Ubig {
        self.mont_mul(a, &Ubig::one())
    }

    /// REDC(a*b): returns `a * b * R⁻¹ mod n`.
    fn mont_mul(&self, a: &Ubig, b: &Ubig) -> Ubig {
        let k = self.k;
        let nl = self.n.as_limbs();
        // t = a * b, extended to 2k+1 limbs for reduction carries.
        let mut t = mul_limbs(a.as_limbs(), b.as_limbs());
        t.resize(2 * k + 1, 0);

        for i in 0..k {
            let m = t[i].wrapping_mul(self.n0_inv);
            // t += m * n << (64*i)
            let mut carry = 0u128;
            for (j, &nj) in nl.iter().enumerate() {
                let cur = t[i + j] as u128 + m as u128 * nj as u128 + carry;
                t[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut idx = i + k;
            while carry != 0 {
                let cur = t[idx] as u128 + carry;
                t[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }

        // Result is t >> (64*k), at most one subtraction from n away.
        let mut res: Vec<u64> = t[k..].to_vec();
        if ge_slices(&res, nl) {
            let borrow = sub_assign_slice(&mut res, nl);
            debug_assert_eq!(borrow, 0);
        }
        Ubig::from_limbs(res)
    }
}

impl crate::zeroize::Zeroize for MontCtx {
    /// Wipes the modulus and precomputed residues. A context built for a
    /// secret modulus (`p²`, `q²` in CRT decryption) reveals that modulus,
    /// so secret-key `Drop` impls wipe their contexts too.
    fn zeroize(&mut self) {
        self.n.zeroize();
        self.r_mod_n.zeroize();
        self.r2_mod_n.zeroize();
        self.n0_inv.zeroize();
        self.k.zeroize();
    }
}

/// Compares two little-endian limb slices (possibly unnormalized).
fn ge_slices(a: &[u64], b: &[u64]) -> bool {
    let alen = effective_len(a);
    let blen = effective_len(b);
    if alen != blen {
        return alen > blen;
    }
    for i in (0..alen).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

fn effective_len(a: &[u64]) -> usize {
    let mut len = a.len();
    while len > 0 && a[len - 1] == 0 {
        len -= 1;
    }
    len
}

/// Inverse of an odd limb modulo 2⁶⁴ by Newton–Hensel lifting.
fn inv_limb(x: u64) -> u64 {
    debug_assert!(x & 1 == 1);
    let mut inv = x; // correct mod 2^3 for odd x
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    }
    debug_assert_eq!(x.wrapping_mul(inv), 1);
    inv
}

fn nibble(e: &Ubig, w: usize) -> usize {
    let bit = w * 4;
    let limb = bit / 64;
    let off = bit % 64;
    let limbs = e.as_limbs();
    let lo = limbs.get(limb).copied().unwrap_or(0) >> off;
    let val = if off > 60 {
        lo | (limbs.get(limb + 1).copied().unwrap_or(0) << (64 - off))
    } else {
        lo
    };
    (val & 0xf) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_even_and_trivial_moduli() {
        assert!(MontCtx::new(&Ubig::from(10u64)).is_none());
        assert!(MontCtx::new(&Ubig::zero()).is_none());
        assert!(MontCtx::new(&Ubig::one()).is_none());
        assert!(MontCtx::new(&Ubig::from(9u64)).is_some());
    }

    #[test]
    fn inv_limb_small() {
        for x in [1u64, 3, 5, 0xdeadbeef | 1, u64::MAX] {
            assert_eq!(x.wrapping_mul(inv_limb(x)), 1);
        }
    }

    #[test]
    fn pow_matches_naive_small() {
        let n = Ubig::from(1000003u64);
        let ctx = MontCtx::new(&n).unwrap();
        for base in [0u64, 1, 2, 999, 1000002] {
            for exp in [0u64, 1, 2, 3, 17, 65537] {
                let expected = naive_pow(base, exp, 1000003);
                assert_eq!(
                    ctx.pow(&Ubig::from(base), &Ubig::from(exp)),
                    Ubig::from(expected),
                    "{base}^{exp}"
                );
            }
        }
    }

    #[test]
    fn pow_with_unreduced_base() {
        let n = Ubig::from(101u64);
        let ctx = MontCtx::new(&n).unwrap();
        assert_eq!(
            ctx.pow(&Ubig::from(102u64), &Ubig::from(5u64)),
            Ubig::from(1u64)
        );
    }

    #[test]
    fn mul_matches_mod() {
        let n = Ubig::from(999999937u64);
        let ctx = MontCtx::new(&n).unwrap();
        let a = Ubig::from(123456789u64);
        let b = Ubig::from(987654321u64);
        assert_eq!(ctx.mul(&a, &b), (&a * &b) % &n);
    }

    #[test]
    fn multi_limb_fermat() {
        // 2^127 - 1 is a Mersenne prime spanning two limbs.
        let p = (Ubig::one() << 127) - Ubig::one();
        let ctx = MontCtx::new(&p).unwrap();
        let exp = &p - &Ubig::one();
        assert_eq!(ctx.pow(&Ubig::from(3u64), &exp), Ubig::one());
    }

    fn naive_pow(mut b: u64, mut e: u64, m: u64) -> u64 {
        let mut acc = 1u128;
        let mut bb = b as u128 % m as u128;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc * bb % m as u128;
            }
            bb = bb * bb % m as u128;
            e >>= 1;
        }
        b = acc as u64;
        b
    }
}
