//! Greatest common divisor and least common multiple.

use crate::Ubig;

/// Binary (Stein) GCD.
///
/// `gcd(a, 0) == a` and `gcd(0, 0) == 0`.
///
/// ```
/// use pisa_bigint::{Ubig, modular::gcd};
/// assert_eq!(gcd(&Ubig::from(48u64), &Ubig::from(18u64)), Ubig::from(6u64));
/// ```
pub fn gcd(a: &Ubig, b: &Ubig) -> Ubig {
    if a.is_zero() {
        return b.clone();
    }
    if b.is_zero() {
        return a.clone();
    }
    let mut a = a.clone();
    let mut b = b.clone();
    let za = a.trailing_zeros();
    let zb = b.trailing_zeros();
    let common_twos = za.min(zb);
    a >>= za;
    b >>= zb;
    loop {
        // Invariant: both odd.
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= &a;
        if b.is_zero() {
            return a << common_twos;
        }
        b = &b >> b.trailing_zeros();
    }
}

/// Least common multiple; `lcm(x, 0) == 0`.
///
/// ```
/// use pisa_bigint::{Ubig, modular::lcm};
/// assert_eq!(lcm(&Ubig::from(4u64), &Ubig::from(6u64)), Ubig::from(12u64));
/// ```
pub fn lcm(a: &Ubig, b: &Ubig) -> Ubig {
    if a.is_zero() || b.is_zero() {
        return Ubig::zero();
    }
    let g = gcd(a, b);
    (a / &g) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_matches_u64() {
        fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            a
        }
        for a in 0..40u64 {
            for b in 0..40u64 {
                assert_eq!(
                    gcd(&Ubig::from(a), &Ubig::from(b)),
                    Ubig::from(gcd_u64(a, b)),
                    "gcd({a},{b})"
                );
            }
        }
    }

    #[test]
    fn gcd_large_power_of_two_factors() {
        let a = Ubig::from(3u64) << 100;
        let b = Ubig::from(5u64) << 80;
        assert_eq!(gcd(&a, &b), Ubig::one() << 80);
    }

    #[test]
    fn lcm_cases() {
        assert_eq!(lcm(&Ubig::from(4u64), &Ubig::from(6u64)), Ubig::from(12u64));
        assert_eq!(lcm(&Ubig::zero(), &Ubig::from(6u64)), Ubig::zero());
        assert_eq!(lcm(&Ubig::from(7u64), &Ubig::from(7u64)), Ubig::from(7u64));
    }

    #[test]
    fn gcd_divides_both() {
        let a = Ubig::from(987654321987654321u64);
        let b = Ubig::from(123456789123456789u64);
        let g = gcd(&a, &b);
        assert!((&a % &g).is_zero());
        assert!((&b % &g).is_zero());
    }
}
