//! Modular exponentiation entry point.

use super::MontCtx;
use crate::Ubig;

/// `base^exp mod modulus`.
///
/// Odd moduli use Montgomery-form windowed exponentiation; even moduli
/// fall back to square-and-multiply with division-based reduction (rare in
/// practice — Paillier and RSA moduli are odd).
///
/// # Panics
///
/// Panics if `modulus` is zero.
///
/// # Examples
///
/// ```
/// use pisa_bigint::{Ubig, modular::mod_pow};
///
/// let m = Ubig::from(497u64);
/// assert_eq!(mod_pow(&Ubig::from(4u64), &Ubig::from(13u64), &m), Ubig::from(445u64));
/// ```
pub fn mod_pow(base: &Ubig, exp: &Ubig, modulus: &Ubig) -> Ubig {
    assert!(!modulus.is_zero(), "zero modulus in mod_pow");
    if modulus.is_one() {
        return Ubig::zero();
    }
    if let Some(ctx) = MontCtx::new(modulus) {
        return ctx.pow(base, exp);
    }
    // Even modulus: plain left-to-right square-and-multiply.
    let mut acc = Ubig::one();
    let base = base % modulus;
    for i in (0..exp.bit_len()).rev() {
        acc = (&acc * &acc) % modulus;
        if exp.bit(i) {
            acc = (&acc * &base) % modulus;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_cases() {
        let m = Ubig::from(97u64);
        assert_eq!(mod_pow(&Ubig::from(5u64), &Ubig::zero(), &m), Ubig::one());
        assert_eq!(
            mod_pow(&Ubig::from(5u64), &Ubig::one(), &m),
            Ubig::from(5u64)
        );
        assert_eq!(mod_pow(&Ubig::zero(), &Ubig::from(5u64), &m), Ubig::zero());
    }

    #[test]
    fn modulus_one_gives_zero() {
        assert_eq!(
            mod_pow(&Ubig::from(5u64), &Ubig::from(5u64), &Ubig::one()),
            Ubig::zero()
        );
    }

    #[test]
    fn even_modulus_fallback() {
        // 3^5 = 243 = 3 mod 16
        assert_eq!(
            mod_pow(&Ubig::from(3u64), &Ubig::from(5u64), &Ubig::from(16u64)),
            Ubig::from(3u64)
        );
        // matches the odd path on a shared case via CRT sanity: 3^5 mod 48
        assert_eq!(
            mod_pow(&Ubig::from(3u64), &Ubig::from(5u64), &Ubig::from(48u64)),
            Ubig::from(3u64)
        );
    }

    #[test]
    #[should_panic(expected = "zero modulus")]
    fn zero_modulus_panics() {
        let _ = mod_pow(&Ubig::one(), &Ubig::one(), &Ubig::zero());
    }

    #[test]
    fn large_exponent_consistency() {
        // a^(e1+e2) == a^e1 * a^e2 (mod m)
        let m = (Ubig::one() << 127) - Ubig::one();
        let a = Ubig::from(0x1234_5678_9abc_def0u64);
        let e1 = Ubig::from(0xffff_ffff_ffffu64);
        let e2 = Ubig::from(0x1111_2222_3333u64);
        let lhs = mod_pow(&a, &(&e1 + &e2), &m);
        let rhs = (mod_pow(&a, &e1, &m) * mod_pow(&a, &e2, &m)) % &m;
        assert_eq!(lhs, rhs);
    }
}
