//! Fixed-base windowed exponentiation.
//!
//! When the same base is raised to many different exponents — the
//! rerandomizer base `h^n` across a whole sign-test batch, a verification
//! key across a stream of signatures — the per-call window table that
//! [`MontCtx::pow`] builds is pure waste: it depends only on the base.
//! [`FixedBasePow`] hoists that table out of the loop, widening it to
//! cover every exponent window so each subsequent power is a straight
//! product of table entries with **no squarings at all**.

use super::mont::{copy_padded, digit, MontCtx, MontScratch};
use crate::Ubig;

/// Window width in bits. Fixed: the table covers every window position up
/// front, so unlike the sliding ladder there is no build-cost/ladder-cost
/// trade to adapt per exponent.
const WINDOW_BITS: usize = 4;

/// A precomputed fixed-base exponentiation table over one modulus.
///
/// `table[i][d]` holds `base^(d · 2^(4i))` in Montgomery form, for every
/// 4-bit window position `i` covering `max_exp_bits` bits and every digit
/// `d ∈ 0..16`. A power is then the product of one entry per window:
/// `⌈max_exp_bits/4⌉ − 1` multiplications, independent of the exponent's
/// value *and* of its bit length (shorter exponents multiply by the
/// Montgomery 1 entries of their empty windows), so the shape leak
/// guarantee of [`MontCtx::pow`] is preserved and strengthened.
///
/// Construction costs ~18 multiplications per window; it amortizes after
/// a handful of powers and the break-even shrinks as exponents grow.
///
/// The table is derived from the base, so a table built over a
/// secret-adjacent base reveals it: [`FixedBasePow`] implements
/// [`crate::zeroize::Zeroize`] and redacts its `Debug` output.
pub struct FixedBasePow {
    ctx: MontCtx,
    /// Exponent capacity in bits; `pow` asserts `exp.bit_len()` ≤ this.
    max_exp_bits: usize,
    /// Number of 4-bit windows covering `max_exp_bits`.
    windows: usize,
    /// Flat table: window `i`, digit `d` occupies
    /// `[(i · 16 + d) · k, (i · 16 + d + 1) · k)`, Montgomery form.
    table: Vec<u64>,
}

impl FixedBasePow {
    /// Precomputes the window table for `base` under `ctx`'s modulus,
    /// sized for exponents up to `max_exp_bits` bits. The base need not
    /// be reduced. Returns `None` when `max_exp_bits` is zero.
    pub fn new(ctx: &MontCtx, base: &Ubig, max_exp_bits: usize) -> Option<Self> {
        if max_exp_bits == 0 {
            return None;
        }
        let k = ctx.limb_width();
        let windows = max_exp_bits.div_ceil(WINDOW_BITS);
        let digits = 1usize << WINDOW_BITS;
        let mut s = ctx.scratch();

        let reduced;
        let base = if base < ctx.modulus() {
            base
        } else {
            reduced = base % ctx.modulus();
            &reduced
        };
        let base_m = ctx.to_mont(base, &mut s);
        let one_m = ctx.one_mont();

        let mut table = vec![0u64; windows * digits * k];
        for i in 0..windows {
            let row = i * digits * k;
            copy_padded(&mut table[row..row + k], one_m.as_limbs());
            if i == 0 {
                copy_padded(&mut table[row + k..row + 2 * k], base_m.as_limbs());
            } else {
                // Window base = previous window's base^16: four squarings.
                let prev = (i - 1) * digits * k + k;
                let (lo, hi) = table.split_at_mut(row + k);
                hi[..k].copy_from_slice(&lo[prev..prev + k]);
                for _ in 0..WINDOW_BITS {
                    ctx.mont_mul_into(&hi[..k], &hi[..k], &mut s.acc, &mut s.prod);
                    hi[..k].copy_from_slice(&s.acc);
                }
            }
            // Remaining digits by repeated multiplication with the
            // window base.
            for d in 2..digits {
                let (lo, hi) = table.split_at_mut(row + d * k);
                let wbase = &lo[row + k..row + 2 * k];
                let prev = &lo[row + (d - 1) * k..row + d * k];
                ctx.mont_mul_into(prev, wbase, &mut s.acc, &mut s.prod);
                hi[..k].copy_from_slice(&s.acc);
            }
        }
        Some(FixedBasePow {
            ctx: ctx.clone(),
            max_exp_bits,
            windows,
            table,
        })
    }

    /// Exponent capacity in bits.
    pub fn max_exp_bits(&self) -> usize {
        self.max_exp_bits
    }

    /// The modulus this table reduces by.
    pub fn modulus(&self) -> &Ubig {
        self.ctx.modulus()
    }

    /// Montgomery multiplications one [`FixedBasePow::pow_mont`] call
    /// performs — a constant for the table, exposed for the shape tests.
    pub fn muls_per_pow(&self) -> u64 {
        self.windows as u64 - 1
    }

    /// `base^exp mod n`.
    ///
    /// # Panics
    ///
    /// Panics if `exp.bit_len()` exceeds the table's `max_exp_bits`.
    pub fn pow(&self, exp: &Ubig) -> Ubig {
        let mut s = self.ctx.scratch();
        let m = self.pow_mont(exp, &mut s);
        self.ctx.from_mont(&m, &mut s)
    }

    /// `base^exp` in Montgomery form, for chaining into further
    /// Montgomery products without a round trip.
    ///
    /// Every window multiplies unconditionally — empty and zero windows
    /// multiply by the Montgomery 1 — so the multiplication count is the
    /// same for every exponent the table accepts.
    ///
    /// # Panics
    ///
    /// Panics if `exp.bit_len()` exceeds the table's `max_exp_bits`.
    pub fn pow_mont(&self, exp: &Ubig, s: &mut MontScratch) -> Ubig {
        assert!(
            exp.bit_len() <= self.max_exp_bits,
            "exponent wider than fixed-base table capacity"
        );
        let k = self.ctx.limb_width();
        let digits = 1usize << WINDOW_BITS;
        s.fit(k);
        let entry = |i: usize, d: usize| {
            let at = (i * digits + d) * k;
            &self.table[at..at + k]
        };
        s.acc.copy_from_slice(entry(0, digit(exp, 0, WINDOW_BITS)));
        for i in 1..self.windows {
            let d = digit(exp, i, WINDOW_BITS);
            self.ctx
                .mont_mul_into(&s.acc, entry(i, d), &mut s.tmp, &mut s.prod);
            std::mem::swap(&mut s.acc, &mut s.tmp);
        }
        Ubig::from_limbs(s.acc.clone())
    }

    /// Allocates working memory sized for this table's modulus.
    pub fn scratch(&self) -> MontScratch {
        self.ctx.scratch()
    }
}

impl std::fmt::Debug for FixedBasePow {
    /// Redacted: the table determines the base, which may be
    /// secret-adjacent; only the shape parameters are printed.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FixedBasePow")
            .field("max_exp_bits", &self.max_exp_bits)
            .field("windows", &self.windows)
            .finish_non_exhaustive()
    }
}

impl crate::zeroize::Zeroize for FixedBasePow {
    fn zeroize(&mut self) {
        self.table.zeroize();
        self.ctx.zeroize();
        self.max_exp_bits.zeroize();
        self.windows.zeroize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_mont_ctx_pow() {
        let p = (Ubig::one() << 127) - Ubig::one();
        let ctx = MontCtx::new(&p).unwrap();
        let base = Ubig::from(0x9e3779b9u64);
        let fb = FixedBasePow::new(&ctx, &base, 128).unwrap();
        for exp in [0u64, 1, 2, 15, 16, 17, 0xdeadbeef, u64::MAX] {
            let e = Ubig::from(exp);
            assert_eq!(fb.pow(&e), ctx.pow(&base, &e), "exp {exp}");
        }
        let wide = (Ubig::one() << 127) - Ubig::from(12345u64);
        assert_eq!(fb.pow(&wide), ctx.pow(&base, &wide));
    }

    #[test]
    fn unreduced_base_and_zero_exponent() {
        let n = Ubig::from(1000003u64);
        let ctx = MontCtx::new(&n).unwrap();
        let base = &n + &Ubig::from(7u64);
        let fb = FixedBasePow::new(&ctx, &base, 64).unwrap();
        assert_eq!(fb.pow(&Ubig::zero()), Ubig::one());
        assert_eq!(fb.pow(&Ubig::from(3u64)), Ubig::from(343u64));
    }

    #[test]
    fn zero_capacity_rejected() {
        let ctx = MontCtx::new(&Ubig::from(97u64)).unwrap();
        assert!(FixedBasePow::new(&ctx, &Ubig::from(2u64), 0).is_none());
    }

    #[test]
    #[should_panic(expected = "wider than fixed-base table capacity")]
    fn over_capacity_exponent_panics() {
        let ctx = MontCtx::new(&Ubig::from(97u64)).unwrap();
        let fb = FixedBasePow::new(&ctx, &Ubig::from(2u64), 8).unwrap();
        fb.pow(&Ubig::from(512u64));
    }

    #[test]
    fn constant_mul_count_across_exponents() {
        use super::super::mont::{mont_mul_count, reset_mont_mul_count};
        let p = (Ubig::one() << 127) - Ubig::one();
        let ctx = MontCtx::new(&p).unwrap();
        let fb = FixedBasePow::new(&ctx, &Ubig::from(5u64), 120).unwrap();
        let mut s = fb.scratch();
        let mut counts = Vec::new();
        for exp in [1u64, 0xff, 0xffff_ffff_ffff_ffff] {
            reset_mont_mul_count();
            fb.pow_mont(&Ubig::from(exp), &mut s);
            counts.push(mont_mul_count());
        }
        assert!(counts.windows(2).all(|c| c[0] == c[1]), "{counts:?}");
        assert_eq!(counts[0], fb.muls_per_pow());
    }
}
