//! Modular inverse.
//!
//! Odd moduli (the only kind Paillier and RSA produce) use the binary
//! extended-GCD algorithm — shift/add only, `O(k²)` word operations —
//! while even moduli fall back to the classic extended Euclid.

use crate::{Ibig, Ubig};

/// Computes `a⁻¹ mod m`, or `None` if `gcd(a, m) != 1`.
///
/// # Panics
///
/// Panics if `m` is zero.
///
/// # Examples
///
/// ```
/// use pisa_bigint::{Ubig, modular::mod_inverse};
///
/// let inv = mod_inverse(&Ubig::from(3u64), &Ubig::from(11u64)).expect("coprime");
/// assert_eq!(inv, Ubig::from(4u64)); // 3 * 4 = 12 = 1 mod 11
/// assert!(mod_inverse(&Ubig::from(4u64), &Ubig::from(8u64)).is_none());
/// ```
pub fn mod_inverse(a: &Ubig, m: &Ubig) -> Option<Ubig> {
    assert!(!m.is_zero(), "zero modulus in mod_inverse");
    if m.is_one() {
        return Some(Ubig::zero());
    }
    let a = a % m;
    if a.is_zero() {
        return None;
    }
    if m.is_odd() {
        binary_inverse(&a, m)
    } else {
        euclid_inverse(&a, m)
    }
}

/// Binary extended GCD (HAC algorithm 14.61 shape) for odd `m`.
fn binary_inverse(a: &Ubig, m: &Ubig) -> Option<Ubig> {
    let mut u = a.clone();
    let mut v = m.clone();
    // Coefficients x1, x2 with u ≡ x1·a and v ≡ x2·a (mod m).
    let mut x1 = Ubig::one();
    let mut x2 = Ubig::zero();

    while !u.is_one() && !v.is_one() {
        while u.is_even() {
            u >>= 1;
            half_mod(&mut x1, m);
        }
        while v.is_even() {
            v >>= 1;
            half_mod(&mut x2, m);
        }
        if u >= v {
            u -= &v;
            sub_mod(&mut x1, &x2, m);
            if u.is_zero() {
                // gcd(a, m) = v != 1
                return None;
            }
        } else {
            v -= &u;
            sub_mod(&mut x2, &x1, m);
            if v.is_zero() {
                return None;
            }
        }
    }
    Some(if u.is_one() { x1 } else { x2 })
}

/// In-place `x ← x / 2 mod m` for odd `m`.
fn half_mod(x: &mut Ubig, m: &Ubig) {
    if x.is_odd() {
        *x += m;
    }
    *x >>= 1;
}

/// In-place `x ← x − y mod m` for reduced operands.
fn sub_mod(x: &mut Ubig, y: &Ubig, m: &Ubig) {
    if &*x < y {
        *x += m;
    }
    *x -= y;
}

/// Extended Euclid tracking only the coefficient of `a` (even moduli).
fn euclid_inverse(a: &Ubig, m: &Ubig) -> Option<Ubig> {
    let mut old_r = Ibig::from(a.clone());
    let mut r = Ibig::from(m.clone());
    let mut old_s = Ibig::from(1i64);
    let mut s = Ibig::from(0i64);

    while !r.is_zero() {
        let q = &old_r / &r;
        let next_r = &old_r - &(&q * &r);
        old_r = std::mem::replace(&mut r, next_r);
        let next_s = &old_s - &(&q * &s);
        old_s = std::mem::replace(&mut s, next_s);
    }

    if !old_r.magnitude().is_one() {
        return None; // gcd != 1
    }
    Some(old_s.rem_euclid(m))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_roundtrip_prime_modulus() {
        let p = Ubig::from(1000003u64);
        for a in [1u64, 2, 3, 500000, 1000002] {
            let a = Ubig::from(a);
            let inv = mod_inverse(&a, &p).expect("prime modulus");
            assert_eq!((&a * &inv) % &p, Ubig::one());
        }
    }

    #[test]
    fn non_coprime_returns_none() {
        assert!(mod_inverse(&Ubig::from(6u64), &Ubig::from(9u64)).is_none());
        assert!(mod_inverse(&Ubig::zero(), &Ubig::from(9u64)).is_none());
        assert!(mod_inverse(&Ubig::from(3u64), &Ubig::from(9u64)).is_none());
    }

    #[test]
    fn even_modulus_path() {
        // 3⁻¹ mod 16 = 11
        assert_eq!(
            mod_inverse(&Ubig::from(3u64), &Ubig::from(16u64)),
            Some(Ubig::from(11u64))
        );
        assert!(mod_inverse(&Ubig::from(4u64), &Ubig::from(16u64)).is_none());
    }

    #[test]
    fn binary_and_euclid_agree_exhaustively() {
        for m in (3u64..60).step_by(2) {
            let m_big = Ubig::from(m);
            for a in 1..m {
                let a_big = Ubig::from(a);
                let bin = binary_inverse(&(&a_big % &m_big), &m_big);
                let euc = euclid_inverse(&(&a_big % &m_big), &m_big);
                assert_eq!(bin, euc, "a={a}, m={m}");
                if let Some(inv) = bin {
                    assert_eq!((&a_big * &inv) % &m_big, Ubig::one());
                }
            }
        }
    }

    #[test]
    fn unreduced_input() {
        let m = Ubig::from(11u64);
        let inv = mod_inverse(&Ubig::from(14u64), &m).unwrap(); // 14 ≡ 3
        assert_eq!(inv, Ubig::from(4u64));
    }

    #[test]
    fn modulus_one() {
        assert_eq!(
            mod_inverse(&Ubig::from(5u64), &Ubig::one()),
            Some(Ubig::zero())
        );
    }

    #[test]
    fn large_modulus_roundtrip() {
        let m = (Ubig::one() << 127) - Ubig::one(); // prime
        let a = Ubig::from(0xdead_beef_1234_5678u64);
        let inv = mod_inverse(&a, &m).unwrap();
        assert_eq!((&a * &inv) % &m, Ubig::one());
    }

    #[test]
    fn paillier_sized_inverse() {
        // 4096-bit odd modulus, pseudo-random unit.
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut m = Ubig::from_limbs((0..64).map(|_| next()).collect());
        m.set_bit(0, true);
        let a = Ubig::from_limbs((0..60).map(|_| next()).collect());
        if let Some(inv) = mod_inverse(&a, &m) {
            assert_eq!((&a * &inv) % &m, Ubig::one());
        }
    }
}
