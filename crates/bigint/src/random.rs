//! Uniform random sampling of big integers.

use crate::Ubig;
use rand::Rng;

/// Samples a uniform integer with exactly `bits` significant bits (the top
/// bit is always set).
///
/// # Panics
///
/// Panics if `bits == 0`.
///
/// # Examples
///
/// ```
/// use pisa_bigint::random::random_bits;
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(42);
/// let x = random_bits(&mut rng, 128);
/// assert_eq!(x.bit_len(), 128);
/// ```
pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Ubig {
    assert!(bits > 0, "cannot sample an integer with zero bits");
    let limbs = bits.div_ceil(64);
    let mut v: Vec<u64> = (0..limbs).map(|_| rng.next_u64()).collect();
    let top_bits = bits - (limbs - 1) * 64;
    if top_bits < 64 {
        v[limbs - 1] &= (1u64 << top_bits) - 1;
    }
    v[limbs - 1] |= 1u64 << (top_bits - 1); // force exact bit length
    Ubig::from_limbs(v)
}

/// Samples a uniform integer in `[0, bound)` by rejection.
///
/// # Panics
///
/// Panics if `bound` is zero.
pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &Ubig) -> Ubig {
    assert!(!bound.is_zero(), "empty sampling range [0, 0)");
    if bound.is_one() {
        return Ubig::zero();
    }
    let bits = bound.bit_len();
    let limbs = bits.div_ceil(64);
    let top_bits = bits - (limbs - 1) * 64;
    loop {
        let mut v: Vec<u64> = (0..limbs).map(|_| rng.next_u64()).collect();
        if top_bits < 64 {
            v[limbs - 1] &= (1u64 << top_bits) - 1;
        }
        let candidate = Ubig::from_limbs(v);
        if &candidate < bound {
            return candidate;
        }
    }
}

/// Samples a uniform integer in `[low, high)`.
///
/// # Panics
///
/// Panics if `low >= high`.
pub fn random_range<R: Rng + ?Sized>(rng: &mut R, low: &Ubig, high: &Ubig) -> Ubig {
    assert!(low < high, "empty sampling range");
    low + &random_below(rng, &(high - low))
}

/// Samples a uniform invertible element of `Z_n*` (nonzero and coprime to
/// `n`) — the random factor `r` of Paillier encryption.
///
/// # Panics
///
/// Panics if `n <= 1`.
pub fn random_coprime<R: Rng + ?Sized>(rng: &mut R, n: &Ubig) -> Ubig {
    assert!(!n.is_zero() && !n.is_one(), "no units modulo {n:?}");
    loop {
        let candidate = random_below(rng, n);
        if candidate.is_zero() {
            continue;
        }
        if crate::modular::gcd(&candidate, n).is_one() {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xfeed_beef)
    }

    #[test]
    fn random_bits_exact_length() {
        let mut r = rng();
        for bits in [1usize, 2, 63, 64, 65, 1024] {
            let v = random_bits(&mut r, bits);
            assert_eq!(v.bit_len(), bits, "bits={bits}");
        }
    }

    #[test]
    fn random_below_in_range() {
        let mut r = rng();
        let bound = Ubig::from(1000u64);
        for _ in 0..200 {
            assert!(random_below(&mut r, &bound) < bound);
        }
        assert_eq!(random_below(&mut r, &Ubig::one()), Ubig::zero());
    }

    #[test]
    fn random_below_covers_values() {
        // All residues of a tiny bound appear within a modest sample.
        let mut r = rng();
        let bound = Ubig::from(4u64);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = u64::try_from(&random_below(&mut r, &bound)).unwrap();
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "seen = {seen:?}");
    }

    #[test]
    fn random_range_bounds() {
        let mut r = rng();
        let low = Ubig::from(100u64);
        let high = Ubig::from(110u64);
        for _ in 0..100 {
            let v = random_range(&mut r, &low, &high);
            assert!(v >= low && v < high);
        }
    }

    #[test]
    fn random_coprime_is_unit() {
        let mut r = rng();
        let n = Ubig::from(100u64);
        for _ in 0..50 {
            let v = random_coprime(&mut r, &n);
            assert!(crate::modular::gcd(&v, &n).is_one());
            assert!(!v.is_zero() && v < n);
        }
    }

    #[test]
    #[should_panic(expected = "empty sampling range")]
    fn random_below_zero_panics() {
        let _ = random_below(&mut rng(), &Ubig::zero());
    }
}
