//! Signed arbitrary-precision integers (sign–magnitude).

use crate::Ubig;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Rem, Sub};

/// Sign of an [`Ibig`].
///
/// Zero always carries [`Sign::Positive`] so that equal values have equal
/// representations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Non-negative.
    Positive,
    /// Strictly negative.
    Negative,
}

impl Sign {
    fn flip(self) -> Sign {
        match self {
            Sign::Positive => Sign::Negative,
            Sign::Negative => Sign::Positive,
        }
    }
}

/// A signed arbitrary-precision integer.
///
/// Used for the centered-lift plaintext domain of Paillier (values in
/// `(-n/2, n/2]`) and for the blinded interference arithmetic of PISA.
///
/// # Examples
///
/// ```
/// use pisa_bigint::Ibig;
///
/// let a = Ibig::from(-5i64);
/// let b = Ibig::from(3i64);
/// assert_eq!((a + b).to_string(), "-2");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Ibig {
    sign: Sign,
    magnitude: Ubig,
}

impl Ibig {
    /// The value `0`.
    pub fn zero() -> Self {
        Ibig {
            sign: Sign::Positive,
            magnitude: Ubig::zero(),
        }
    }

    /// Builds a value from a sign and magnitude (zero is normalized to
    /// positive).
    pub fn from_sign_magnitude(sign: Sign, magnitude: Ubig) -> Self {
        if magnitude.is_zero() {
            Ibig::zero()
        } else {
            Ibig { sign, magnitude }
        }
    }

    /// The sign of the value; zero reports [`Sign::Positive`].
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The absolute value.
    pub fn magnitude(&self) -> &Ubig {
        &self.magnitude
    }

    /// Consumes `self`, returning the absolute value.
    pub fn into_magnitude(self) -> Ubig {
        self.magnitude
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.magnitude.is_zero()
    }

    /// Returns `true` if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive && !self.is_zero()
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Euclidean remainder in `[0, m)`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    ///
    /// ```
    /// use pisa_bigint::{Ibig, Ubig};
    /// let r = Ibig::from(-7i64).rem_euclid(&Ubig::from(5u64));
    /// assert_eq!(r, Ubig::from(3u64));
    /// ```
    pub fn rem_euclid(&self, m: &Ubig) -> Ubig {
        let r = &self.magnitude % m;
        match self.sign {
            Sign::Positive => r,
            Sign::Negative => {
                if r.is_zero() {
                    r
                } else {
                    m - &r
                }
            }
        }
    }
}

impl Default for Ibig {
    fn default() -> Self {
        Ibig::zero()
    }
}

impl crate::zeroize::Zeroize for Ibig {
    fn zeroize(&mut self) {
        self.magnitude.zeroize();
        self.sign = Sign::Positive; // canonical zero
    }
}

impl From<Ubig> for Ibig {
    fn from(magnitude: Ubig) -> Self {
        Ibig::from_sign_magnitude(Sign::Positive, magnitude)
    }
}

impl From<i64> for Ibig {
    fn from(v: i64) -> Self {
        let sign = if v < 0 {
            Sign::Negative
        } else {
            Sign::Positive
        };
        Ibig::from_sign_magnitude(sign, Ubig::from(v.unsigned_abs()))
    }
}

impl From<u64> for Ibig {
    fn from(v: u64) -> Self {
        Ibig::from(Ubig::from(v))
    }
}

impl Neg for Ibig {
    type Output = Ibig;
    fn neg(self) -> Ibig {
        Ibig::from_sign_magnitude(self.sign.flip(), self.magnitude)
    }
}

impl Neg for &Ibig {
    type Output = Ibig;
    fn neg(self) -> Ibig {
        Ibig::from_sign_magnitude(self.sign.flip(), self.magnitude.clone())
    }
}

fn add_impl(a: &Ibig, b: &Ibig) -> Ibig {
    if a.sign == b.sign {
        return Ibig::from_sign_magnitude(a.sign, &a.magnitude + &b.magnitude);
    }
    match a.magnitude.cmp(&b.magnitude) {
        Ordering::Equal => Ibig::zero(),
        Ordering::Greater => Ibig::from_sign_magnitude(a.sign, &a.magnitude - &b.magnitude),
        Ordering::Less => Ibig::from_sign_magnitude(b.sign, &b.magnitude - &a.magnitude),
    }
}

fn mul_impl(a: &Ibig, b: &Ibig) -> Ibig {
    let sign = if a.sign == b.sign {
        Sign::Positive
    } else {
        Sign::Negative
    };
    Ibig::from_sign_magnitude(sign, &a.magnitude * &b.magnitude)
}

/// Truncated division (rounds toward zero), like Rust's primitive `/`.
fn div_impl(a: &Ibig, b: &Ibig) -> Ibig {
    let sign = if a.sign == b.sign {
        Sign::Positive
    } else {
        Sign::Negative
    };
    Ibig::from_sign_magnitude(sign, &a.magnitude / &b.magnitude)
}

/// Truncated remainder: sign follows the dividend, like Rust's `%`.
fn rem_impl(a: &Ibig, b: &Ibig) -> Ibig {
    Ibig::from_sign_magnitude(a.sign, &a.magnitude % &b.magnitude)
}

macro_rules! forward_ibig_binop {
    ($trait:ident, $method:ident, $imp:ident) => {
        impl $trait<&Ibig> for &Ibig {
            type Output = Ibig;
            fn $method(self, rhs: &Ibig) -> Ibig {
                $imp(self, rhs)
            }
        }
        impl $trait<Ibig> for Ibig {
            type Output = Ibig;
            fn $method(self, rhs: Ibig) -> Ibig {
                $imp(&self, &rhs)
            }
        }
        impl $trait<&Ibig> for Ibig {
            type Output = Ibig;
            fn $method(self, rhs: &Ibig) -> Ibig {
                $imp(&self, rhs)
            }
        }
        impl $trait<Ibig> for &Ibig {
            type Output = Ibig;
            fn $method(self, rhs: Ibig) -> Ibig {
                $imp(self, &rhs)
            }
        }
    };
}

fn sub_impl(a: &Ibig, b: &Ibig) -> Ibig {
    add_impl(
        a,
        &Ibig::from_sign_magnitude(b.sign.flip(), b.magnitude.clone()),
    )
}

forward_ibig_binop!(Add, add, add_impl);
forward_ibig_binop!(Sub, sub, sub_impl);
forward_ibig_binop!(Mul, mul, mul_impl);
forward_ibig_binop!(Div, div, div_impl);
forward_ibig_binop!(Rem, rem, rem_impl);

impl Ord for Ibig {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Positive, Sign::Negative) => Ordering::Greater,
            (Sign::Negative, Sign::Positive) => Ordering::Less,
            (Sign::Positive, Sign::Positive) => self.magnitude.cmp(&other.magnitude),
            (Sign::Negative, Sign::Negative) => other.magnitude.cmp(&self.magnitude),
        }
    }
}

impl PartialOrd for Ibig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Ibig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Negative {
            f.write_str("-")?;
        }
        write!(f, "{}", self.magnitude)
    }
}

impl fmt::Debug for Ibig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ibig({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> Ibig {
        Ibig::from(v)
    }

    #[test]
    fn add_sub_match_i64() {
        let cases = [-7i64, -3, -1, 0, 1, 3, 9];
        for &a in &cases {
            for &b in &cases {
                assert_eq!(i(a) + i(b), i(a + b), "{a} + {b}");
                assert_eq!(i(a) - i(b), i(a - b), "{a} - {b}");
                assert_eq!(i(a) * i(b), i(a * b), "{a} * {b}");
                if b != 0 {
                    assert_eq!(i(a) / i(b), i(a / b), "{a} / {b}");
                    assert_eq!(i(a) % i(b), i(a % b), "{a} % {b}");
                }
            }
        }
    }

    #[test]
    fn zero_is_positive() {
        let z = i(5) - i(5);
        assert_eq!(z.sign(), Sign::Positive);
        assert_eq!(z, -z.clone());
        assert!(!z.is_positive());
        assert!(!z.is_negative());
    }

    #[test]
    fn ordering_with_signs() {
        assert!(i(-5) < i(-2));
        assert!(i(-2) < i(0));
        assert!(i(0) < i(3));
        assert!(i(-100) < i(1));
    }

    #[test]
    fn rem_euclid_nonnegative() {
        let m = Ubig::from(7u64);
        assert_eq!(i(-1).rem_euclid(&m), Ubig::from(6u64));
        assert_eq!(i(-7).rem_euclid(&m), Ubig::zero());
        assert_eq!(i(13).rem_euclid(&m), Ubig::from(6u64));
        assert_eq!(i(0).rem_euclid(&m), Ubig::zero());
    }

    #[test]
    fn display_negative() {
        assert_eq!(i(-42).to_string(), "-42");
        assert_eq!(format!("{:?}", i(-1)), "Ibig(-1)");
    }
}
