//! Ordering for [`Ubig`].

use crate::Ubig;
use std::cmp::Ordering;

impl Ord for Ubig {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for Ubig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use crate::Ubig;

    #[test]
    fn ordering_by_length_then_limbs() {
        let small = Ubig::from(u64::MAX);
        let big = Ubig::from_limbs(vec![0, 1]);
        assert!(small < big);
        assert!(big > small);
        assert!(Ubig::zero() < Ubig::one());
    }

    #[test]
    fn equal_values_compare_equal() {
        let a = Ubig::from_limbs(vec![1, 2, 3]);
        assert_eq!(a.cmp(&a.clone()), std::cmp::Ordering::Equal);
    }

    #[test]
    fn msb_decides() {
        let a = Ubig::from_limbs(vec![u64::MAX, 1]);
        let b = Ubig::from_limbs(vec![0, 2]);
        assert!(a < b);
    }
}
