//! Primality testing and random prime generation.

use crate::modular::{mod_pow, MontCtx};
use crate::random::{random_below, random_bits};
use crate::Ubig;
use rand::Rng;

/// Number of Miller–Rabin rounds used by [`gen_prime`]; gives error
/// probability below 2⁻⁸⁰ for the key sizes PISA uses.
pub const DEFAULT_MILLER_RABIN_ROUNDS: usize = 40;

/// Small primes used for trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 54] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

/// Probabilistic primality test: trial division by small primes, then
/// `rounds` Miller–Rabin iterations with random bases.
///
/// # Examples
///
/// ```
/// use pisa_bigint::{prime, Ubig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// assert!(prime::is_probable_prime(&Ubig::from(65537u64), 20, &mut rng));
/// assert!(!prime::is_probable_prime(&Ubig::from(65539u64 * 3), 20, &mut rng));
/// ```
pub fn is_probable_prime<R: Rng + ?Sized>(n: &Ubig, rounds: usize, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let p = Ubig::from(p);
        if *n == p {
            return true;
        }
        if (n % &p).is_zero() {
            return false;
        }
    }
    miller_rabin(n, rounds, rng)
}

fn miller_rabin<R: Rng + ?Sized>(n: &Ubig, rounds: usize, rng: &mut R) -> bool {
    // n is odd and > 251 here.
    let n_minus_1 = n - &Ubig::one();
    let s = n_minus_1.trailing_zeros();
    let d = &n_minus_1 >> s;
    let ctx = MontCtx::new(n).expect("odd candidate");
    let two = Ubig::from(2u64);
    let bound = n - &Ubig::from(3u64);

    'witness: for _ in 0..rounds {
        let a = &two + &random_below(rng, &bound); // a in [2, n-2]
        let mut x = ctx.pow(&a, &d);
        if x.is_one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = ctx.mul(&x, &x);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// The two top bits are forced to 1 so that the product of two such primes
/// has exactly `2 * bits` bits — the shape Paillier and RSA key generation
/// rely on.
///
/// # Panics
///
/// Panics if `bits < 8`.
pub fn gen_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Ubig {
    assert!(bits >= 8, "prime size too small: {bits} bits");
    loop {
        let mut candidate = random_bits(rng, bits);
        candidate.set_bit(0, true); // odd
        candidate.set_bit(bits - 2, true); // top two bits set
        if passes_trial_division(&candidate)
            && miller_rabin(&candidate, DEFAULT_MILLER_RABIN_ROUNDS, rng)
        {
            return candidate;
        }
    }
}

fn passes_trial_division(n: &Ubig) -> bool {
    SMALL_PRIMES
        .iter()
        .all(|&p| !(n % &Ubig::from(p)).is_zero())
}

/// Deterministic primality check for `u64` values, used in tests and the
/// radio substrate (no randomness needed at this size).
pub fn is_prime_u64(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &SMALL_PRIMES {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // Deterministic Miller-Rabin bases for u64.
    let n_big = Ubig::from(n);
    let n_minus_1 = n - 1;
    let s = n_minus_1.trailing_zeros();
    let d = n_minus_1 >> s;
    for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if a >= n {
            continue;
        }
        let mut x = mod_pow(&Ubig::from(a), &Ubig::from(d), &n_big);
        if x.is_one() || x == Ubig::from(n_minus_1) {
            continue;
        }
        let mut composite = true;
        for _ in 0..s - 1 {
            x = (&x * &x) % &n_big;
            if x == Ubig::from(n_minus_1) {
                composite = false;
                break;
            }
        }
        if composite {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn small_prime_classification() {
        let mut r = rng();
        let primes = [2u64, 3, 5, 251, 257, 65537, 1000003];
        let composites = [0u64, 1, 4, 255, 65535, 1000001, 561, 41041]; // incl. Carmichael
        for &p in &primes {
            assert!(is_probable_prime(&Ubig::from(p), 30, &mut r), "{p}");
        }
        for &c in &composites {
            assert!(!is_probable_prime(&Ubig::from(c), 30, &mut r), "{c}");
        }
    }

    #[test]
    fn is_prime_u64_matches_sieve() {
        let mut sieve = vec![true; 1000];
        sieve[0] = false;
        sieve[1] = false;
        for i in 2..1000 {
            if sieve[i] {
                for j in (i * i..1000).step_by(i) {
                    sieve[j] = false;
                }
            }
        }
        for (i, &expected) in sieve.iter().enumerate() {
            assert_eq!(is_prime_u64(i as u64), expected, "n={i}");
        }
    }

    #[test]
    fn mersenne_prime_multi_limb() {
        let mut r = rng();
        let p127 = (Ubig::one() << 127) - Ubig::one();
        assert!(is_probable_prime(&p127, 20, &mut r));
        let c = &p127 * &Ubig::from(3u64);
        assert!(!is_probable_prime(&c, 20, &mut r));
    }

    #[test]
    fn gen_prime_has_exact_bits_and_is_prime() {
        let mut r = rng();
        for bits in [16usize, 64, 128] {
            let p = gen_prime(&mut r, bits);
            assert_eq!(p.bit_len(), bits);
            assert!(p.bit(bits - 2), "top two bits set");
            assert!(is_probable_prime(&p, 30, &mut r));
        }
    }

    #[test]
    fn gen_prime_product_has_double_bits() {
        let mut r = rng();
        let p = gen_prime(&mut r, 96);
        let q = gen_prime(&mut r, 96);
        assert_eq!((&p * &q).bit_len(), 192);
    }
}
