//! Division: single-limb short division and Knuth Algorithm D for the
//! multi-limb case.

use crate::Ubig;

pub(crate) fn div(a: &Ubig, b: &Ubig) -> Ubig {
    div_rem(a, b).0
}

pub(crate) fn rem(a: &Ubig, b: &Ubig) -> Ubig {
    div_rem(a, b).1
}

pub(crate) fn div_rem(a: &Ubig, b: &Ubig) -> (Ubig, Ubig) {
    assert!(!b.is_zero(), "division by zero Ubig");
    if a < b {
        return (Ubig::zero(), a.clone());
    }
    if b.limbs.len() == 1 {
        let (q, r) = div_rem_single(&a.limbs, b.limbs[0]);
        return (Ubig::from_limbs(q), Ubig::from(r));
    }
    let (q, r) = div_rem_normalized(&a.limbs, &b.limbs);
    (Ubig::from_limbs(q), Ubig::from_limbs(r))
}

fn div_rem_single(a: &[u64], d: u64) -> (Vec<u64>, u64) {
    let mut q = vec![0u64; a.len()];
    let mut rem = 0u128;
    for i in (0..a.len()).rev() {
        let cur = (rem << 64) | a[i] as u128;
        q[i] = (cur / d as u128) as u64;
        rem = cur % d as u128;
    }
    (q, rem as u64)
}

/// Knuth TAOCP Vol. 2, Algorithm 4.3.1-D. Requires `b.len() >= 2` and
/// `a >= b` (callers guarantee both).
pub(crate) fn div_rem_normalized(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let n = b.len();
    let m = a.len() - n;
    let shift = b[n - 1].leading_zeros();

    // Normalize so the divisor's top bit is set.
    let v = shl_limbs(b, shift);
    let mut u = shl_limbs(a, shift);
    u.resize(a.len() + 1, 0);

    let v_top = v[n - 1];
    let v_second = v[n - 2];
    let mut q = vec![0u64; m + 1];

    for j in (0..=m).rev() {
        // Estimate q̂ from the top two limbs of the current remainder.
        let top2 = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
        let mut qhat = top2 / v_top as u128;
        let mut rhat = top2 % v_top as u128;
        if qhat > u64::MAX as u128 {
            qhat = u64::MAX as u128;
            rhat = top2 - qhat * v_top as u128;
        }
        // Refine: at most two corrections per Knuth.
        while rhat <= u64::MAX as u128
            && qhat * v_second as u128 > ((rhat << 64) | u[j + n - 2] as u128)
        {
            qhat -= 1;
            rhat += v_top as u128;
        }

        // Multiply-and-subtract u[j..j+n+1] -= qhat * v.
        let mut borrow = 0i128;
        let mut carry = 0u128;
        for i in 0..n {
            let p = qhat * v[i] as u128 + carry;
            carry = p >> 64;
            let t = u[j + i] as i128 - (p as u64) as i128 + borrow;
            u[j + i] = t as u64;
            borrow = t >> 64;
        }
        let t = u[j + n] as i128 - carry as i128 + borrow;
        u[j + n] = t as u64;

        q[j] = qhat as u64;
        if t < 0 {
            // q̂ was one too large: add the divisor back.
            q[j] -= 1;
            let carry = super::add_assign_slice(&mut u[j..j + n], &v);
            u[j + n] = u[j + n].wrapping_add(carry);
        }
    }

    let r = shr_limbs(&u[..n], shift);
    (q, r)
}

fn shl_limbs(a: &[u64], shift: u32) -> Vec<u64> {
    if shift == 0 {
        return a.to_vec();
    }
    let mut out = Vec::with_capacity(a.len() + 1);
    let mut carry = 0u64;
    for &l in a {
        out.push((l << shift) | carry);
        carry = l >> (64 - shift);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

fn shr_limbs(a: &[u64], shift: u32) -> Vec<u64> {
    if shift == 0 {
        return a.to_vec();
    }
    let mut out = Vec::with_capacity(a.len());
    for (i, &l) in a.iter().enumerate() {
        let hi = a.get(i + 1).copied().unwrap_or(0);
        out.push((l >> shift) | (hi << (64 - shift)));
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::Ubig;

    fn check(a: &Ubig, b: &Ubig) {
        let (q, r) = a.div_rem(b);
        assert!(r < *b, "remainder not reduced");
        assert_eq!(&(&q * b) + &r, *a, "q*b + r != a");
    }

    #[test]
    fn small_cases() {
        check(&Ubig::from(17u64), &Ubig::from(5u64));
        check(&Ubig::from(100u64), &Ubig::from(100u64));
        check(&Ubig::from(5u64), &Ubig::from(17u64));
        check(&Ubig::zero(), &Ubig::one());
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Ubig::one() / Ubig::zero();
    }

    #[test]
    fn single_limb_divisor() {
        let a = Ubig::from_limbs(vec![0x0123456789abcdef, 0xfedcba9876543210, 0x1111]);
        check(&a, &Ubig::from(3u64));
        check(&a, &Ubig::from(u64::MAX));
    }

    #[test]
    fn multi_limb_knuth_d() {
        let a = Ubig::from_limbs(vec![
            0xdeadbeefdeadbeef,
            0x0123456789abcdef,
            0xcafebabecafebabe,
            0x1122334455667788,
        ]);
        let b = Ubig::from_limbs(vec![0xffffffff00000001, 0x00000000ffffffff]);
        check(&a, &b);
    }

    #[test]
    fn add_back_case() {
        // A divisor crafted so the q̂ correction/add-back branch triggers:
        // u = 2^192 - 1, v = 2^128 - 1 → q = 2^64, exercises edge estimates.
        let u = (Ubig::one() << 192) - Ubig::one();
        let v = (Ubig::one() << 128) - Ubig::one();
        check(&u, &v);
        let (q, r) = u.div_rem(&v);
        assert_eq!(q, Ubig::one() << 64);
        assert_eq!(r, (Ubig::one() << 64) - Ubig::one());
    }

    #[test]
    fn exhaustive_small_pairs() {
        for a in 0..60u64 {
            for b in 1..60u64 {
                let (q, r) = Ubig::from(a).div_rem(&Ubig::from(b));
                assert_eq!(q, Ubig::from(a / b));
                assert_eq!(r, Ubig::from(a % b));
            }
        }
    }

    #[test]
    fn large_pseudorandom_roundtrip() {
        let mut x = 0x243f6a8885a308d3u64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for na in [3usize, 5, 9] {
            for nb in [2usize, 3, 4] {
                let a = Ubig::from_limbs((0..na).map(|_| next()).collect());
                let b = Ubig::from_limbs((0..nb).map(|_| next()).collect());
                if !b.is_zero() {
                    check(&a, &b);
                }
            }
        }
    }
}
