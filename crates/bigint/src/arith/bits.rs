//! Bitwise AND / OR / XOR.

use crate::Ubig;

pub(crate) fn and(a: &Ubig, b: &Ubig) -> Ubig {
    let out = a
        .limbs
        .iter()
        .zip(b.limbs.iter())
        .map(|(x, y)| x & y)
        .collect();
    Ubig::from_limbs(out)
}

pub(crate) fn or(a: &Ubig, b: &Ubig) -> Ubig {
    let (long, short) = if a.limbs.len() >= b.limbs.len() {
        (a, b)
    } else {
        (b, a)
    };
    let mut out = long.limbs.clone();
    for (o, &s) in out.iter_mut().zip(short.limbs.iter()) {
        *o |= s;
    }
    Ubig::from_limbs(out)
}

pub(crate) fn xor(a: &Ubig, b: &Ubig) -> Ubig {
    let (long, short) = if a.limbs.len() >= b.limbs.len() {
        (a, b)
    } else {
        (b, a)
    };
    let mut out = long.limbs.clone();
    for (o, &s) in out.iter_mut().zip(short.limbs.iter()) {
        *o ^= s;
    }
    Ubig::from_limbs(out)
}

#[cfg(test)]
mod tests {
    use crate::Ubig;

    #[test]
    fn and_or_xor_small() {
        let a = Ubig::from(0b1100u64);
        let b = Ubig::from(0b1010u64);
        assert_eq!(&a & &b, Ubig::from(0b1000u64));
        assert_eq!(&a | &b, Ubig::from(0b1110u64));
        assert_eq!(&a ^ &b, Ubig::from(0b0110u64));
    }

    #[test]
    fn mixed_lengths() {
        let long = Ubig::from_limbs(vec![u64::MAX, u64::MAX]);
        let short = Ubig::from(1u64);
        assert_eq!(&long & &short, short);
        assert_eq!(&long | &short, long);
        assert_eq!(
            &long ^ &short,
            Ubig::from_limbs(vec![u64::MAX - 1, u64::MAX])
        );
    }

    #[test]
    fn xor_self_is_zero() {
        let a = Ubig::from_limbs(vec![3, 5, 9]);
        assert!((&a ^ &a).is_zero());
    }
}
