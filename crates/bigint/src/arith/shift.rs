//! Bit shifts.

use crate::Ubig;

pub(crate) fn shl(a: &Ubig, n: usize) -> Ubig {
    if a.is_zero() || n == 0 {
        return a.clone();
    }
    let (limb_shift, bit_shift) = (n / 64, (n % 64) as u32);
    let mut out = vec![0u64; limb_shift];
    if bit_shift == 0 {
        out.extend_from_slice(&a.limbs);
    } else {
        let mut carry = 0u64;
        for &l in &a.limbs {
            out.push((l << bit_shift) | carry);
            carry = l >> (64 - bit_shift);
        }
        if carry != 0 {
            out.push(carry);
        }
    }
    Ubig::from_limbs(out)
}

pub(crate) fn shr(a: &Ubig, n: usize) -> Ubig {
    let (limb_shift, bit_shift) = (n / 64, (n % 64) as u32);
    if limb_shift >= a.limbs.len() {
        return Ubig::zero();
    }
    let src = &a.limbs[limb_shift..];
    if bit_shift == 0 {
        return Ubig::from_limbs(src.to_vec());
    }
    let mut out = Vec::with_capacity(src.len());
    for (i, &l) in src.iter().enumerate() {
        let hi = src.get(i + 1).copied().unwrap_or(0);
        out.push((l >> bit_shift) | (hi << (64 - bit_shift)));
    }
    Ubig::from_limbs(out)
}

/// In-place right shift (no allocation).
pub(crate) fn shr_in_place(a: &mut Ubig, n: usize) {
    let (limb_shift, bit_shift) = (n / 64, (n % 64) as u32);
    if limb_shift >= a.limbs.len() {
        a.limbs.clear();
        return;
    }
    if limb_shift > 0 {
        a.limbs.drain(..limb_shift);
    }
    if bit_shift > 0 {
        let len = a.limbs.len();
        for i in 0..len {
            let hi = if i + 1 < len { a.limbs[i + 1] } else { 0 };
            a.limbs[i] = (a.limbs[i] >> bit_shift) | (hi << (64 - bit_shift));
        }
    }
    a.normalize();
}

#[cfg(test)]
mod tests {
    use crate::Ubig;

    #[test]
    fn shr_in_place_matches_shr() {
        for n in [0usize, 1, 7, 63, 64, 65, 130, 500] {
            let a = Ubig::from_limbs(vec![0xdead_beef, 0x1234_5678, 0x9abc_def0]);
            let mut b = a.clone();
            b >>= n;
            assert_eq!(b, &a >> n, "n = {n}");
        }
    }

    #[test]
    fn shl_shr_roundtrip() {
        let a = Ubig::from(0xdead_beefu64);
        for n in [0usize, 1, 7, 63, 64, 65, 130] {
            assert_eq!((&a << n) >> n, a, "shift by {n}");
        }
    }

    #[test]
    fn shl_is_mul_by_power_of_two() {
        let a = Ubig::from(37u64);
        assert_eq!(&a << 5, &a * &Ubig::from(32u64));
    }

    #[test]
    fn shr_past_end_is_zero() {
        assert_eq!(Ubig::from(u64::MAX) >> 64, Ubig::zero());
        assert_eq!(Ubig::from(u64::MAX) >> 1000, Ubig::zero());
    }

    #[test]
    fn shr_drops_low_bits() {
        assert_eq!(Ubig::from(0b1011u64) >> 1, Ubig::from(0b101u64));
    }

    #[test]
    fn shift_zero() {
        assert_eq!(Ubig::zero() << 100, Ubig::zero());
        assert_eq!(Ubig::zero() >> 100, Ubig::zero());
    }
}
