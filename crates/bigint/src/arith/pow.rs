//! Non-modular exponentiation and integer square root.

use crate::Ubig;

impl Ubig {
    /// Raises `self` to a small power (square-and-multiply; the result
    /// grows as `bits · exp`, so exponents are `u32`).
    ///
    /// ```
    /// use pisa_bigint::Ubig;
    /// assert_eq!(Ubig::from(3u64).pow(5), Ubig::from(243u64));
    /// assert_eq!(Ubig::from(0u64).pow(0), Ubig::one()); // 0⁰ = 1
    /// ```
    pub fn pow(&self, exp: u32) -> Ubig {
        let mut acc = Ubig::one();
        let mut base = self.clone();
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 {
                acc = &acc * &base;
            }
            e >>= 1;
            if e > 0 {
                base = base.square();
            }
        }
        acc
    }

    /// Integer square root: the largest `r` with `r² ≤ self`
    /// (Newton's method on word-level estimates).
    ///
    /// ```
    /// use pisa_bigint::Ubig;
    /// assert_eq!(Ubig::from(99u64).isqrt(), Ubig::from(9u64));
    /// assert_eq!(Ubig::from(100u64).isqrt(), Ubig::from(10u64));
    /// ```
    pub fn isqrt(&self) -> Ubig {
        if self.is_zero() {
            return Ubig::zero();
        }
        // Initial guess: 2^(ceil(bits/2)) ≥ √self.
        let mut x = Ubig::one() << self.bit_len().div_ceil(2);
        loop {
            // x' = (x + self/x) / 2
            let next = (&x + &(self / &x)) >> 1;
            if next >= x {
                return x;
            }
            x = next;
        }
    }

    /// Parses a string in the given radix (2–36, case-insensitive).
    ///
    /// # Errors
    ///
    /// [`crate::ParseUbigError`] on empty input or out-of-range digits.
    ///
    /// # Panics
    ///
    /// Panics if `radix` is outside `2..=36`.
    ///
    /// ```
    /// use pisa_bigint::Ubig;
    /// assert_eq!(Ubig::from_str_radix("ff", 16).unwrap(), Ubig::from(255u64));
    /// assert_eq!(Ubig::from_str_radix("1010", 2).unwrap(), Ubig::from(10u64));
    /// ```
    pub fn from_str_radix(s: &str, radix: u32) -> Result<Ubig, crate::ParseUbigError> {
        assert!((2..=36).contains(&radix), "radix {radix} out of range");
        if s.is_empty() {
            return Err(crate::ParseUbigError::Empty);
        }
        let base = Ubig::from(radix as u64);
        let mut out = Ubig::zero();
        for c in s.chars() {
            let d = c
                .to_digit(radix)
                .ok_or(crate::ParseUbigError::InvalidDigit(c))?;
            out = &out * &base + Ubig::from(d as u64);
        }
        Ok(out)
    }

    /// Approximates the value as `f64` (`+inf` far beyond the range).
    ///
    /// ```
    /// use pisa_bigint::Ubig;
    /// assert_eq!(Ubig::from(1u64 << 53).to_f64(), 9007199254740992.0);
    /// ```
    pub fn to_f64(&self) -> f64 {
        let bits = self.bit_len();
        if bits <= 64 {
            return u64::try_from(self).expect("fits u64") as f64;
        }
        // Take the top 64 bits and scale.
        let shift = bits - 64;
        let top = u64::try_from(&(self >> shift)).expect("64 bits");
        top as f64 * (shift as f64).exp2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow_small_cases() {
        assert_eq!(Ubig::from(2u64).pow(10), Ubig::from(1024u64));
        assert_eq!(Ubig::from(7u64).pow(0), Ubig::one());
        assert_eq!(Ubig::from(7u64).pow(1), Ubig::from(7u64));
        assert_eq!(Ubig::zero().pow(5), Ubig::zero());
    }

    #[test]
    fn pow_matches_shift_for_two() {
        for e in [0u32, 1, 17, 100, 300] {
            assert_eq!(Ubig::from(2u64).pow(e), Ubig::one() << e as usize);
        }
    }

    #[test]
    fn isqrt_exhaustive_small() {
        for n in 0u64..2000 {
            let r = u64::try_from(&Ubig::from(n).isqrt()).unwrap();
            assert!(r * r <= n, "isqrt({n}) = {r}");
            assert!((r + 1) * (r + 1) > n, "isqrt({n}) = {r}");
        }
    }

    #[test]
    fn isqrt_perfect_square_large() {
        let x = Ubig::from(0xdead_beef_cafe_babeu64);
        assert_eq!(x.square().isqrt(), x);
        let almost = x.square() - Ubig::one();
        assert_eq!(almost.isqrt(), &x - &Ubig::one());
    }

    #[test]
    fn radix_parsing() {
        assert_eq!(
            Ubig::from_str_radix("DeadBeef", 16).unwrap(),
            Ubig::from(0xdeadbeefu64)
        );
        assert_eq!(Ubig::from_str_radix("777", 8).unwrap(), Ubig::from(511u64));
        assert_eq!(
            Ubig::from_str_radix("zz", 36).unwrap(),
            Ubig::from(35 * 36 + 35u64)
        );
        assert!(Ubig::from_str_radix("12", 2).is_err());
        assert!(Ubig::from_str_radix("", 10).is_err());
    }

    #[test]
    #[should_panic(expected = "radix")]
    fn bad_radix_panics() {
        let _ = Ubig::from_str_radix("1", 1);
    }

    #[test]
    fn to_f64_accuracy() {
        assert_eq!(Ubig::zero().to_f64(), 0.0);
        assert_eq!(Ubig::from(12345u64).to_f64(), 12345.0);
        let big = Ubig::one() << 200;
        let expected = 200f64.exp2();
        assert!((big.to_f64() - expected).abs() / expected < 1e-10);
    }
}
