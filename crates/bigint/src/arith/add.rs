//! Addition and subtraction.

use crate::Ubig;

pub(crate) fn add(a: &Ubig, b: &Ubig) -> Ubig {
    let (long, short) = if a.limbs.len() >= b.limbs.len() {
        (a, b)
    } else {
        (b, a)
    };
    let mut out = long.limbs.clone();
    let carry = add_assign_slice(&mut out, &short.limbs);
    if carry != 0 {
        out.push(carry);
    }
    Ubig::from_limbs(out)
}

/// Adds `b` into `a` in place (`a.len() >= b.len()`), returning the final
/// carry (0 or 1).
pub(crate) fn add_assign_slice(a: &mut [u64], b: &[u64]) -> u64 {
    debug_assert!(a.len() >= b.len());
    let mut carry = 0u64;
    for (ai, &bi) in a.iter_mut().zip(b.iter()) {
        let (s1, c1) = ai.overflowing_add(bi);
        let (s2, c2) = s1.overflowing_add(carry);
        *ai = s2;
        carry = (c1 as u64) + (c2 as u64);
    }
    for ai in a.iter_mut().skip(b.len()) {
        if carry == 0 {
            break;
        }
        let (s, c) = ai.overflowing_add(carry);
        *ai = s;
        carry = c as u64;
    }
    carry
}

pub(crate) fn sub(a: &Ubig, b: &Ubig) -> Ubig {
    assert!(a >= b, "Ubig subtraction underflow");
    let mut out = a.limbs.clone();
    let borrow = sub_assign_slice(&mut out, &b.limbs);
    debug_assert_eq!(borrow, 0);
    Ubig::from_limbs(out)
}

/// Subtracts `b` from `a` in place (`a.len() >= b.len()`), returning the
/// final borrow (0 or 1).
pub(crate) fn sub_assign_slice(a: &mut [u64], b: &[u64]) -> u64 {
    debug_assert!(a.len() >= b.len());
    let mut borrow = 0u64;
    for (ai, &bi) in a.iter_mut().zip(b.iter()) {
        let (d1, b1) = ai.overflowing_sub(bi);
        let (d2, b2) = d1.overflowing_sub(borrow);
        *ai = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    for ai in a.iter_mut().skip(b.len()) {
        if borrow == 0 {
            break;
        }
        let (d, bo) = ai.overflowing_sub(borrow);
        *ai = d;
        borrow = bo as u64;
    }
    borrow
}

#[cfg(test)]
mod tests {
    use crate::Ubig;

    #[test]
    fn add_with_carry_chain() {
        let a = Ubig::from_limbs(vec![u64::MAX, u64::MAX]);
        let b = Ubig::one();
        let sum = &a + &b;
        assert_eq!(sum.as_limbs(), &[0, 0, 1]);
        assert_eq!(&sum - &b, a);
    }

    #[test]
    fn add_zero_identity() {
        let a = Ubig::from(12345u64);
        assert_eq!(&a + &Ubig::zero(), a);
        assert_eq!(&Ubig::zero() + &a, a);
    }

    #[test]
    fn sub_self_is_zero() {
        let a = Ubig::from_limbs(vec![7, 8, 9]);
        assert!((&a - &a).is_zero());
    }

    #[test]
    fn sub_with_borrow_chain() {
        let a = Ubig::from_limbs(vec![0, 0, 1]);
        let b = Ubig::one();
        assert_eq!((&a - &b).as_limbs(), &[u64::MAX, u64::MAX]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = Ubig::one() - Ubig::from(2u64);
    }

    #[test]
    fn commutativity_small() {
        for x in 0..20u64 {
            for y in 0..20u64 {
                assert_eq!(Ubig::from(x) + Ubig::from(y), Ubig::from(y) + Ubig::from(x));
                assert_eq!(Ubig::from(x) + Ubig::from(y), Ubig::from(x + y));
            }
        }
    }
}
