//! Multiplication: schoolbook for small operands, Karatsuba above a
//! limb-count threshold.

use crate::Ubig;

/// Operands with at least this many limbs on both sides use Karatsuba.
const KARATSUBA_THRESHOLD: usize = 24;

pub(crate) fn mul(a: &Ubig, b: &Ubig) -> Ubig {
    if a.is_zero() || b.is_zero() {
        return Ubig::zero();
    }
    Ubig::from_limbs(mul_limbs(&a.limbs, &b.limbs))
}

/// Multiplies two little-endian limb slices, returning a (possibly
/// unnormalized) limb vector of length `a.len() + b.len()`.
pub(crate) fn mul_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.len().min(b.len()) >= KARATSUBA_THRESHOLD {
        karatsuba(a, b)
    } else {
        schoolbook(a, b)
    }
}

/// Multiplies two limb slices into a caller-provided buffer without
/// allocating. `out[..a.len() + b.len()]` receives the full product; any
/// tail beyond it is zeroed too, so the buffer can be wider than the
/// product (the Montgomery kernel passes its `2k + 1`-limb scratch).
///
/// Always schoolbook: the only caller is the Montgomery REDC kernel,
/// whose operands are modulus-width (≤ 64 limbs for 2048-bit keys). At
/// those widths the allocation-free inner loop beats Karatsuba's three
/// recursive `Vec` allocations, and the constant shape (no
/// operand-value-dependent skips, no recursion-depth variation) is what
/// the constant-time argument for the ladder rests on.
///
/// # Panics
///
/// Panics if `out.len() < a.len() + b.len()`.
pub(crate) fn mul_limbs_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    assert!(out.len() >= a.len() + b.len(), "product buffer too small");
    out.fill(0);
    for (i, &ai) in a.iter().enumerate() {
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let t = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        // b.len() limbs of product plus one carry limb always fit.
        out[i + b.len()] = carry as u64;
    }
}

fn schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        // No zero-limb skip: this multiplier sits under Montgomery
        // exponentiation, and skipping rows on operand value would make
        // the running time a function of secret limb contents.
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let t = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = out[k] as u128 + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    out
}

fn karatsuba(a: &[u64], b: &[u64]) -> Vec<u64> {
    let split = a.len().max(b.len()).div_ceil(2);
    if a.len() <= split || b.len() <= split {
        // Too unbalanced to split both; fall back.
        return schoolbook(a, b);
    }
    let (a0, a1) = a.split_at(split);
    let (b0, b1) = b.split_at(split);

    let z0 = mul_limbs(a0, b0);
    let z2 = mul_limbs(a1, b1);

    // (a0 + a1) * (b0 + b1)
    let sa = add_slices(a0, a1);
    let sb = add_slices(b0, b1);
    let mut z1 = mul_limbs(&sa, &sb);
    // z1 -= z0 + z2
    sub_in_place(&mut z1, &z0);
    sub_in_place(&mut z1, &z2);

    let mut out = vec![0u64; a.len() + b.len()];
    add_at(&mut out, &z0, 0);
    add_at(&mut out, &z1, split);
    add_at(&mut out, &z2, 2 * split);
    out
}

fn add_slices(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = long.to_vec();
    let carry = super::add_assign_slice(&mut out, short);
    if carry != 0 {
        out.push(carry);
    }
    out
}

fn sub_in_place(a: &mut Vec<u64>, b: &[u64]) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    let borrow = super::sub_assign_slice(a, b);
    debug_assert_eq!(borrow, 0, "karatsuba middle term must be non-negative");
}

fn add_at(out: &mut [u64], val: &[u64], offset: usize) {
    let carry = super::add_assign_slice(&mut out[offset..], trim(val));
    debug_assert_eq!(carry, 0, "karatsuba output buffer overflow");
}

fn trim(v: &[u64]) -> &[u64] {
    let mut end = v.len();
    while end > 0 && v[end - 1] == 0 {
        end -= 1;
    }
    &v[..end]
}

#[cfg(test)]
mod tests {
    use crate::Ubig;

    #[test]
    fn mul_small() {
        assert_eq!(Ubig::from(6u64) * Ubig::from(7u64), Ubig::from(42u64));
        assert_eq!(Ubig::from(0u64) * Ubig::from(7u64), Ubig::zero());
        assert_eq!(Ubig::one() * Ubig::from(7u64), Ubig::from(7u64));
    }

    #[test]
    fn mul_cross_limb() {
        let a = Ubig::from(u64::MAX);
        let sq = a.square();
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        let expected = (Ubig::one() << 128) - (Ubig::one() << 65) + Ubig::one();
        assert_eq!(sq, expected);
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Construct operands large enough to hit the Karatsuba path with a
        // deterministic pseudo-random pattern.
        let mut limbs_a = Vec::new();
        let mut limbs_b = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..80u64 {
            x = x.wrapping_mul(0xbf58476d1ce4e5b9).wrapping_add(i);
            limbs_a.push(x);
            x = x.rotate_left(17) ^ i;
            limbs_b.push(x);
        }
        let a = Ubig::from_limbs(limbs_a);
        let b = Ubig::from_limbs(limbs_b);
        let fast = &a * &b;
        let slow = Ubig::from_limbs(super::schoolbook(a.as_limbs(), b.as_limbs()));
        assert_eq!(fast, slow);
    }

    #[test]
    fn mul_distributes_over_add() {
        let a = Ubig::from(123456789u64);
        let b = Ubig::from(987654321u64);
        let c = Ubig::from(555555555u64);
        assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn karatsuba_unbalanced_operands() {
        let big = Ubig::from_limbs((1..=100u64).collect());
        let small = Ubig::from_limbs(vec![3, 1]);
        let prod = &big * &small;
        let slow = Ubig::from_limbs(super::schoolbook(big.as_limbs(), small.as_limbs()));
        assert_eq!(prod, slow);
    }
}
