//! Arithmetic on [`Ubig`]: addition, subtraction, multiplication, division
//! and shifts, wired up as operator overloads on both owned values and
//! references.

mod add;
mod bits;
mod div;
mod mul;
mod pow;
mod shift;

pub(crate) use add::{add_assign_slice, sub_assign_slice};
pub(crate) use mul::{mul_limbs, mul_limbs_into};

use crate::Ubig;
use std::ops::{Add, AddAssign, BitAnd, BitOr, BitXor, Div, Mul, Rem, Shl, Shr, Sub, SubAssign};

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $imp:path) => {
        impl $trait<&Ubig> for &Ubig {
            type Output = Ubig;
            fn $method(self, rhs: &Ubig) -> Ubig {
                $imp(self, rhs)
            }
        }
        impl $trait<Ubig> for Ubig {
            type Output = Ubig;
            fn $method(self, rhs: Ubig) -> Ubig {
                $imp(&self, &rhs)
            }
        }
        impl $trait<&Ubig> for Ubig {
            type Output = Ubig;
            fn $method(self, rhs: &Ubig) -> Ubig {
                $imp(&self, rhs)
            }
        }
        impl $trait<Ubig> for &Ubig {
            type Output = Ubig;
            fn $method(self, rhs: Ubig) -> Ubig {
                $imp(self, &rhs)
            }
        }
    };
}

forward_binop!(Add, add, add::add);
forward_binop!(Sub, sub, add::sub);
forward_binop!(Mul, mul, mul::mul);
forward_binop!(Div, div, div::div);
forward_binop!(Rem, rem, div::rem);
forward_binop!(BitAnd, bitand, bits::and);
forward_binop!(BitOr, bitor, bits::or);
forward_binop!(BitXor, bitxor, bits::xor);

impl AddAssign<&Ubig> for Ubig {
    fn add_assign(&mut self, rhs: &Ubig) {
        if self.limbs.len() < rhs.limbs.len() {
            self.limbs.resize(rhs.limbs.len(), 0);
        }
        let carry = add::add_assign_slice(&mut self.limbs, &rhs.limbs);
        if carry != 0 {
            self.limbs.push(carry);
        }
    }
}

impl SubAssign<&Ubig> for Ubig {
    /// In-place subtraction.
    ///
    /// # Panics
    ///
    /// Panics if `rhs > self`.
    fn sub_assign(&mut self, rhs: &Ubig) {
        assert!(&*self >= rhs, "Ubig subtraction underflow");
        let borrow = add::sub_assign_slice(&mut self.limbs, &rhs.limbs);
        debug_assert_eq!(borrow, 0);
        self.normalize();
    }
}

impl std::ops::ShrAssign<usize> for Ubig {
    fn shr_assign(&mut self, rhs: usize) {
        shift::shr_in_place(self, rhs);
    }
}

impl Shl<usize> for &Ubig {
    type Output = Ubig;
    fn shl(self, rhs: usize) -> Ubig {
        shift::shl(self, rhs)
    }
}

impl Shl<usize> for Ubig {
    type Output = Ubig;
    fn shl(self, rhs: usize) -> Ubig {
        shift::shl(&self, rhs)
    }
}

impl Shr<usize> for &Ubig {
    type Output = Ubig;
    fn shr(self, rhs: usize) -> Ubig {
        shift::shr(self, rhs)
    }
}

impl Shr<usize> for Ubig {
    type Output = Ubig;
    fn shr(self, rhs: usize) -> Ubig {
        shift::shr(&self, rhs)
    }
}

impl Ubig {
    /// Computes quotient and remainder in one division.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    ///
    /// ```
    /// use pisa_bigint::Ubig;
    /// let (q, r) = Ubig::from(17u64).div_rem(&Ubig::from(5u64));
    /// assert_eq!((q, r), (Ubig::from(3u64), Ubig::from(2u64)));
    /// ```
    pub fn div_rem(&self, divisor: &Ubig) -> (Ubig, Ubig) {
        div::div_rem(self, divisor)
    }

    /// `self * self`, slightly faster than general multiplication for
    /// large operands.
    pub fn square(&self) -> Ubig {
        mul::mul(self, self)
    }

    /// Checked subtraction: `None` if `rhs > self`.
    ///
    /// ```
    /// use pisa_bigint::Ubig;
    /// assert!(Ubig::from(1u64).checked_sub(&Ubig::from(2u64)).is_none());
    /// ```
    pub fn checked_sub(&self, rhs: &Ubig) -> Option<Ubig> {
        if self < rhs {
            None
        } else {
            Some(add::sub(self, rhs))
        }
    }
}
