//! Conversions between [`Ubig`] and primitive integers, byte strings and
//! text.

use crate::Ubig;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

impl From<u64> for Ubig {
    fn from(v: u64) -> Self {
        if v == 0 {
            Ubig::zero()
        } else {
            Ubig { limbs: vec![v] }
        }
    }
}

impl From<u32> for Ubig {
    fn from(v: u32) -> Self {
        Ubig::from(v as u64)
    }
}

impl From<u128> for Ubig {
    fn from(v: u128) -> Self {
        Ubig::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl TryFrom<&Ubig> for u64 {
    type Error = TryFromUbigError;

    fn try_from(v: &Ubig) -> Result<Self, Self::Error> {
        match v.limbs.len() {
            0 => Ok(0),
            1 => Ok(v.limbs[0]),
            _ => Err(TryFromUbigError(())),
        }
    }
}

impl TryFrom<&Ubig> for u128 {
    type Error = TryFromUbigError;

    fn try_from(v: &Ubig) -> Result<Self, Self::Error> {
        match v.limbs.len() {
            0 => Ok(0),
            1 => Ok(v.limbs[0] as u128),
            2 => Ok(v.limbs[0] as u128 | (v.limbs[1] as u128) << 64),
            _ => Err(TryFromUbigError(())),
        }
    }
}

/// Error returned when a [`Ubig`] does not fit the requested primitive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TryFromUbigError(());

impl fmt::Display for TryFromUbigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("big integer too large for target type")
    }
}

impl Error for TryFromUbigError {}

impl Ubig {
    /// Parses a big-endian byte string.
    ///
    /// ```
    /// use pisa_bigint::Ubig;
    /// assert_eq!(Ubig::from_be_bytes(&[0x01, 0x00]), Ubig::from(256u64));
    /// ```
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        for chunk in bytes.rchunks(8) {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        Ubig::from_limbs(limbs)
    }

    /// Serializes to a minimal big-endian byte string (empty for zero).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        let mut iter = self.limbs.iter().rev();
        let top = iter.next().expect("non-zero Ubig has limbs");
        let top_bytes = top.to_be_bytes();
        let skip = (top.leading_zeros() / 8) as usize;
        out.extend_from_slice(&top_bytes[skip..]);
        for l in iter {
            out.extend_from_slice(&l.to_be_bytes());
        }
        out
    }

    /// Serializes to a big-endian byte string padded with leading zeros to
    /// exactly `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the value needs more than `len` bytes.
    pub fn to_be_bytes_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_be_bytes();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a hexadecimal string (no prefix, case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`ParseUbigError`] on empty input or non-hex characters.
    pub fn from_hex(s: &str) -> Result<Self, ParseUbigError> {
        if s.is_empty() {
            return Err(ParseUbigError::Empty);
        }
        let mut out = Ubig::zero();
        for c in s.chars() {
            let d = c.to_digit(16).ok_or(ParseUbigError::InvalidDigit(c))?;
            out = (out << 4) + Ubig::from(d as u64);
        }
        Ok(out)
    }
}

impl FromStr for Ubig {
    type Err = ParseUbigError;

    /// Parses a decimal string.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseUbigError::Empty);
        }
        let mut out = Ubig::zero();
        let ten = Ubig::from(10u64);
        for c in s.chars() {
            let d = c.to_digit(10).ok_or(ParseUbigError::InvalidDigit(c))?;
            out = &out * &ten + Ubig::from(d as u64);
        }
        Ok(out)
    }
}

/// Error produced when parsing a [`Ubig`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseUbigError {
    /// The input string was empty.
    Empty,
    /// The input contained a character outside the expected digit set.
    InvalidDigit(char),
}

impl fmt::Display for ParseUbigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseUbigError::Empty => f.write_str("cannot parse big integer from empty string"),
            ParseUbigError::InvalidDigit(c) => write!(f, "invalid digit {c:?} in big integer"),
        }
    }
}

impl Error for ParseUbigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        for v in [0u64, 1, 42, u64::MAX] {
            assert_eq!(u64::try_from(&Ubig::from(v)).unwrap(), v);
        }
        let v = u128::MAX;
        assert_eq!(u128::try_from(&Ubig::from(v)).unwrap(), v);
        assert!(u64::try_from(&Ubig::from(u128::MAX)).is_err());
    }

    #[test]
    fn be_bytes_roundtrip() {
        for v in [
            0u128,
            1,
            255,
            256,
            0xdead_beef_cafe_babe_0123_4567_89ab_cdef,
        ] {
            let u = Ubig::from(v);
            assert_eq!(Ubig::from_be_bytes(&u.to_be_bytes()), u);
        }
    }

    #[test]
    fn be_bytes_minimal_encoding() {
        assert!(Ubig::zero().to_be_bytes().is_empty());
        assert_eq!(Ubig::from(256u64).to_be_bytes(), vec![1, 0]);
        assert_eq!(Ubig::from_be_bytes(&[0, 0, 1, 0]), Ubig::from(256u64));
    }

    #[test]
    fn padded_bytes() {
        let v = Ubig::from(0x1234u64);
        assert_eq!(v.to_be_bytes_padded(4), vec![0, 0, 0x12, 0x34]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_bytes_too_small_panics() {
        let _ = Ubig::from(0x123456u64).to_be_bytes_padded(2);
    }

    #[test]
    fn decimal_parse_and_display() {
        let s = "123456789012345678901234567890123456789";
        let v: Ubig = s.parse().unwrap();
        assert_eq!(v.to_string(), s);
        assert_eq!("0".parse::<Ubig>().unwrap(), Ubig::zero());
    }

    #[test]
    fn hex_parse() {
        assert_eq!(Ubig::from_hex("ff").unwrap(), Ubig::from(255u64));
        assert_eq!(
            Ubig::from_hex("DEADBEEF").unwrap(),
            Ubig::from(0xdeadbeefu64)
        );
        assert_eq!(Ubig::from_hex(""), Err(ParseUbigError::Empty));
        assert_eq!(
            "12x".parse::<Ubig>(),
            Err(ParseUbigError::InvalidDigit('x'))
        );
    }
}
