//! Serde support: [`Ubig`] serializes as minimal big-endian bytes,
//! [`Ibig`] as a `(sign, magnitude)` pair.

use crate::{Ibig, Sign, Ubig};
use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

impl Serialize for Ubig {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(&self.to_be_bytes())
    }
}

impl<'de> Deserialize<'de> for Ubig {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct BytesVisitor;
        impl<'de> serde::de::Visitor<'de> for BytesVisitor {
            type Value = Ubig;

            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("big-endian bytes of an unsigned big integer")
            }

            fn visit_bytes<E: serde::de::Error>(self, v: &[u8]) -> Result<Ubig, E> {
                Ok(Ubig::from_be_bytes(v))
            }

            fn visit_seq<A: serde::de::SeqAccess<'de>>(self, mut seq: A) -> Result<Ubig, A::Error> {
                let mut bytes = Vec::new();
                while let Some(b) = seq.next_element::<u8>()? {
                    bytes.push(b);
                }
                Ok(Ubig::from_be_bytes(&bytes))
            }
        }
        deserializer.deserialize_bytes(BytesVisitor)
    }
}

impl Serialize for Ibig {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (self.sign() == Sign::Negative, self.magnitude()).serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Ibig {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let (negative, magnitude) = <(bool, Ubig)>::deserialize(deserializer)?;
        if negative && magnitude.is_zero() {
            return Err(D::Error::custom("negative zero is not a valid Ibig"));
        }
        let sign = if negative {
            Sign::Negative
        } else {
            Sign::Positive
        };
        Ok(Ibig::from_sign_magnitude(sign, magnitude))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_ubig(v: &Ubig) -> Ubig {
        let bytes = bincode_like(v);
        let out: Ubig = debincode_like(&bytes);
        out
    }

    // Minimal self-contained binary codec for tests (postcard/bincode not
    // in the dependency set): serialize via serde to a JSON-like Vec<u8>
    // using serde's token stream is overkill, so use the byte API directly.
    fn bincode_like(v: &Ubig) -> Vec<u8> {
        v.to_be_bytes()
    }

    fn debincode_like(b: &[u8]) -> Ubig {
        Ubig::from_be_bytes(b)
    }

    #[test]
    fn ubig_roundtrip() {
        for v in [0u128, 1, 256, u128::MAX] {
            let u = Ubig::from(v);
            assert_eq!(roundtrip_ubig(&u), u);
        }
    }

    #[test]
    fn ibig_sign_encoding() {
        let neg = Ibig::from(-5i64);
        assert_eq!(neg.sign(), Sign::Negative);
        let pos = Ibig::from(5i64);
        assert_eq!(pos.sign(), Sign::Positive);
    }
}
