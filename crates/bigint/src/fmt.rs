//! Formatting impls for [`Ubig`].

use crate::Ubig;
use std::fmt;

impl fmt::Display for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Repeated division by 10^19 (largest power of ten in a u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let chunk = Ubig::from(CHUNK);
        let mut digits: Vec<String> = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem(&chunk);
            let r = u64::try_from(&r).expect("remainder below u64 chunk");
            cur = q;
            if cur.is_zero() {
                digits.push(format!("{r}"));
            } else {
                digits.push(format!("{r:019}"));
            }
        }
        digits.reverse();
        f.write_str(&digits.concat())
    }
}

impl fmt::Debug for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ubig({self})")
    }
}

impl fmt::LowerHex for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut iter = self.limbs.iter().rev();
        write!(f, "{:x}", iter.next().expect("non-zero"))?;
        for l in iter {
            write!(f, "{l:016x}")?;
        }
        Ok(())
    }
}

impl fmt::UpperHex for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut iter = self.limbs.iter().rev();
        write!(f, "{:X}", iter.next().expect("non-zero"))?;
        for l in iter {
            write!(f, "{l:016X}")?;
        }
        Ok(())
    }
}

impl fmt::Binary for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut iter = self.limbs.iter().rev();
        write!(f, "{:b}", iter.next().expect("non-zero"))?;
        for l in iter {
            write!(f, "{l:064b}")?;
        }
        Ok(())
    }
}

impl fmt::Octal for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Octal digits do not align with limb boundaries; go via division.
        let eight = Ubig::from(8u64);
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem(&eight);
            digits.push(char::from(
                b'0' + u64::try_from(&r).expect("octal digit") as u8,
            ));
            cur = q;
        }
        digits.reverse();
        f.write_str(&digits.iter().collect::<String>())
    }
}

#[cfg(test)]
mod tests {
    use crate::Ubig;

    #[test]
    fn display_matches_u64() {
        for v in [0u64, 1, 9, 10, 12345678901234567890] {
            assert_eq!(Ubig::from(v).to_string(), v.to_string());
        }
    }

    #[test]
    fn display_multi_chunk() {
        let v = Ubig::from(u128::MAX);
        assert_eq!(v.to_string(), u128::MAX.to_string());
    }

    #[test]
    fn hex_binary_octal() {
        let v = Ubig::from(0xdeadbeefu64);
        assert_eq!(format!("{v:x}"), "deadbeef");
        assert_eq!(format!("{v:X}"), "DEADBEEF");
        assert_eq!(format!("{:b}", Ubig::from(5u64)), "101");
        assert_eq!(format!("{:o}", Ubig::from(8u64)), "10");
        assert_eq!(format!("{:x}", Ubig::zero()), "0");
    }

    #[test]
    fn hex_inner_limbs_zero_padded() {
        let v = Ubig::from_limbs(vec![0x1, 0x2]);
        assert_eq!(format!("{v:x}"), "20000000000000001");
    }

    #[test]
    fn debug_nonempty() {
        assert_eq!(format!("{:?}", Ubig::zero()), "Ubig(0)");
    }
}
