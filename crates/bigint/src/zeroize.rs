//! Best-effort zeroization of secret big integers.
//!
//! Dropping a `Vec<u64>` returns its buffer to the allocator with the
//! limbs of a secret key still in it; a later allocation (or a core
//! dump) can then read them back. This module provides the one thing
//! the rest of the workspace needs to avoid that: a [`Zeroize`] trait
//! that overwrites a value's backing storage — including *spare
//! capacity*, which previous arithmetic may have filled with
//! intermediate limbs — before the memory is released.
//!
//! The wipe uses `core::ptr::write_volatile` followed by a
//! `compiler_fence`, the standard pattern (cf. the `zeroize` crate,
//! which the offline build environment cannot depend on) to keep the
//! optimizer from eliding "dead" stores to memory that is about to be
//! freed.
//!
//! This is the only module in the crate allowed to use `unsafe`; the
//! crate root downgrades `#![forbid(unsafe_code)]` to `deny` so the
//! allow below can scope it to exactly these writes.

#![allow(unsafe_code)]

use crate::Ubig;
use std::sync::atomic::{compiler_fence, Ordering};

/// Overwrites a value's backing storage with zeros in place.
///
/// Implementations must leave the value in a valid (zero) state: the
/// value remains usable after the call, it just no longer holds the
/// secret.
pub trait Zeroize {
    /// Wipes the value's storage (including any spare capacity).
    fn zeroize(&mut self);
}

/// Volatile-writes zeros over the whole allocation of `v` — `capacity`,
/// not just `len` — then truncates it to empty.
impl Zeroize for Vec<u64> {
    fn zeroize(&mut self) {
        let cap = self.capacity();
        let ptr = self.as_mut_ptr();
        for i in 0..cap {
            // SAFETY: `ptr..ptr+cap` is a single live allocation owned by
            // this Vec; writing `u64` zeros into it (initialized or not)
            // is valid, and we never read the uninitialized part.
            unsafe { core::ptr::write_volatile(ptr.add(i), 0) };
        }
        compiler_fence(Ordering::SeqCst);
        self.clear();
    }
}

impl Zeroize for Ubig {
    fn zeroize(&mut self) {
        // Clearing the limbs leaves the canonical representation of zero
        // (empty limb vector), so the invariant "no trailing zero limbs"
        // is preserved.
        self.limbs.zeroize();
    }
}

impl Zeroize for u64 {
    fn zeroize(&mut self) {
        // SAFETY: `self` is a live, exclusively borrowed u64.
        unsafe { core::ptr::write_volatile(self, 0) };
        compiler_fence(Ordering::SeqCst);
    }
}

impl Zeroize for usize {
    fn zeroize(&mut self) {
        // SAFETY: `self` is a live, exclusively borrowed usize.
        unsafe { core::ptr::write_volatile(self, 0) };
        compiler_fence(Ordering::SeqCst);
    }
}

/// A wrapper that [`Zeroize`]s its contents when dropped, before the
/// inner value's own destructor runs.
///
/// ```
/// use pisa_bigint::{Ubig, zeroize::Zeroizing};
///
/// let secret = Zeroizing::new(Ubig::from(0xdead_beefu64));
/// assert!(!secret.is_zero()); // usable through Deref
/// drop(secret); // wiped, then freed
/// ```
pub struct Zeroizing<T: Zeroize>(T);

impl<T: Zeroize> Zeroizing<T> {
    /// Wraps `value` so it is wiped on drop.
    pub fn new(value: T) -> Self {
        Zeroizing(value)
    }
}

impl<T: Zeroize> std::ops::Deref for Zeroizing<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: Zeroize> std::ops::DerefMut for Zeroizing<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: Zeroize> Drop for Zeroizing<T> {
    fn drop(&mut self) {
        self.0.zeroize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn vec_zeroize_wipes_spare_capacity() {
        let mut v: Vec<u64> = Vec::with_capacity(8);
        v.extend_from_slice(&[0xdead, 0xbeef, 0xcafe]);
        v.truncate(1); // 0xbeef and 0xcafe now live in spare capacity
        let cap = v.capacity();
        let ptr = v.as_mut_ptr();
        v.zeroize();
        assert!(v.is_empty());
        assert_eq!(v.capacity(), cap, "zeroize must not reallocate");
        // SAFETY (test only): the Vec still owns this allocation and every
        // slot was just initialized to zero by `zeroize`.
        let all = unsafe { std::slice::from_raw_parts(ptr, cap) };
        assert!(all.iter().all(|&w| w == 0), "spare capacity not wiped");
    }

    #[test]
    fn ubig_zeroize_is_canonical_zero() {
        let mut x = Ubig::from(u64::MAX) * Ubig::from(u64::MAX);
        x.zeroize();
        assert!(x.is_zero());
        assert_eq!(x, Ubig::zero());
    }

    /// A probe that logs when it is zeroized and when it is dropped, so
    /// the test can assert the wipe happens *before* destruction.
    struct Probe {
        log: Rc<RefCell<Vec<&'static str>>>,
    }

    impl Zeroize for Probe {
        fn zeroize(&mut self) {
            self.log.borrow_mut().push("zeroize");
        }
    }

    impl Drop for Probe {
        fn drop(&mut self) {
            self.log.borrow_mut().push("drop");
        }
    }

    #[test]
    fn zeroizing_wipes_before_inner_drop() {
        let log = Rc::new(RefCell::new(Vec::new()));
        {
            let _guard = Zeroizing::new(Probe { log: log.clone() });
            assert!(log.borrow().is_empty(), "no wipe while alive");
        }
        assert_eq!(*log.borrow(), vec!["zeroize", "drop"]);
    }

    #[test]
    fn zeroizing_derefs_transparently() {
        let mut z = Zeroizing::new(Ubig::from(41u64));
        *z = &*z + &Ubig::one();
        assert_eq!(*z, Ubig::from(42u64));
    }

    #[test]
    fn scalar_zeroize() {
        let mut a = 0xdead_beefu64;
        a.zeroize();
        assert_eq!(a, 0);
        let mut b = 7usize;
        b.zeroize();
        assert_eq!(b, 0);
    }
}
