//! The unsigned arbitrary-precision integer type.

/// An unsigned arbitrary-precision integer.
///
/// Stored as little-endian `u64` limbs with the invariant that the most
/// significant limb is non-zero (zero is the empty limb vector). All
/// arithmetic lives in the `arith` and [`crate::modular`] modules; this
/// module owns representation, construction and structural queries.
///
/// # Examples
///
/// ```
/// use pisa_bigint::Ubig;
///
/// let a = Ubig::from(10u64);
/// let b = Ubig::from(32u64);
/// assert_eq!((&a + &b).to_string(), "42");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Ubig {
    /// Little-endian limbs; no trailing zeros.
    pub(crate) limbs: Vec<u64>,
}

impl Ubig {
    /// The value `0`.
    ///
    /// ```
    /// use pisa_bigint::Ubig;
    /// assert!(Ubig::zero().is_zero());
    /// ```
    pub fn zero() -> Self {
        Ubig { limbs: Vec::new() }
    }

    /// The value `1`.
    ///
    /// ```
    /// use pisa_bigint::Ubig;
    /// assert_eq!(Ubig::one(), Ubig::from(1u64));
    /// ```
    pub fn one() -> Self {
        Ubig { limbs: vec![1] }
    }

    /// Constructs a value from little-endian limbs, normalizing trailing
    /// zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Ubig { limbs }
    }

    /// Borrows the little-endian limbs (no trailing zeros).
    pub fn as_limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` if the value is even (zero counts as even).
    ///
    /// ```
    /// use pisa_bigint::Ubig;
    /// assert!(Ubig::zero().is_even());
    /// assert!(!Ubig::from(7u64).is_even());
    /// ```
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Returns `true` if the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits; `0` for zero.
    ///
    /// ```
    /// use pisa_bigint::Ubig;
    /// assert_eq!(Ubig::from(255u64).bit_len(), 8);
    /// assert_eq!(Ubig::from(256u64).bit_len(), 9);
    /// assert_eq!(Ubig::zero().bit_len(), 0);
    /// ```
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Value of bit `i` (little-endian bit numbering).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i` to `value`, growing the representation as needed.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        let (limb, off) = (i / 64, i % 64);
        if value {
            if self.limbs.len() <= limb {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= 1u64 << off;
        } else if limb < self.limbs.len() {
            self.limbs[limb] &= !(1u64 << off);
            self.normalize();
        }
    }

    /// Number of trailing zero bits.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero (trailing-zero count is unbounded).
    pub fn trailing_zeros(&self) -> usize {
        assert!(!self.is_zero(), "trailing_zeros of zero is undefined");
        let mut n = 0;
        for &l in &self.limbs {
            if l == 0 {
                n += 64;
            } else {
                return n + l.trailing_zeros() as usize;
            }
        }
        unreachable!("normalized non-zero Ubig has a non-zero limb")
    }

    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(Ubig::zero().is_zero());
        assert!(Ubig::one().is_one());
        assert!(!Ubig::one().is_zero());
        assert_eq!(Ubig::default(), Ubig::zero());
    }

    #[test]
    fn from_limbs_normalizes() {
        let a = Ubig::from_limbs(vec![5, 0, 0]);
        assert_eq!(a.as_limbs(), &[5]);
        assert_eq!(Ubig::from_limbs(vec![0, 0]), Ubig::zero());
    }

    #[test]
    fn bit_len_cases() {
        assert_eq!(Ubig::zero().bit_len(), 0);
        assert_eq!(Ubig::one().bit_len(), 1);
        assert_eq!(Ubig::from(u64::MAX).bit_len(), 64);
        assert_eq!(Ubig::from_limbs(vec![0, 1]).bit_len(), 65);
    }

    #[test]
    fn bit_get_set() {
        let mut a = Ubig::zero();
        a.set_bit(100, true);
        assert!(a.bit(100));
        assert!(!a.bit(99));
        assert_eq!(a.bit_len(), 101);
        a.set_bit(100, false);
        assert!(a.is_zero());
    }

    #[test]
    fn parity() {
        assert!(Ubig::from(2u64).is_even());
        assert!(Ubig::from(3u64).is_odd());
        assert!(Ubig::zero().is_even());
    }

    #[test]
    fn trailing_zeros_multi_limb() {
        let mut a = Ubig::zero();
        a.set_bit(130, true);
        assert_eq!(a.trailing_zeros(), 130);
        assert_eq!(Ubig::from(12u64).trailing_zeros(), 2);
    }

    #[test]
    #[should_panic(expected = "trailing_zeros of zero")]
    fn trailing_zeros_zero_panics() {
        let _ = Ubig::zero().trailing_zeros();
    }
}
