//! Property tests for the Montgomery kernels: the allocation-free scratch
//! path against the reference allocating path, `FixedBasePow` against
//! `MontCtx::pow` against naive square-and-multiply, and the
//! constant-shape guarantee that multiplication counts depend only on the
//! exponent's bit length.

use pisa_bigint::modular::{mont_mul_count, reset_mont_mul_count, FixedBasePow, MontCtx};
use pisa_bigint::Ubig;
use proptest::prelude::*;

/// Arbitrary odd modulus > 1, up to ~256 bits.
fn odd_modulus() -> impl Strategy<Value = Ubig> {
    proptest::collection::vec(any::<u64>(), 1..4)
        .prop_map(|mut limbs| {
            limbs[0] |= 1;
            Ubig::from_limbs(limbs)
        })
        .prop_filter("modulus > 1", |m| !m.is_one())
}

/// Arbitrary Ubig up to ~256 bits.
fn ubig() -> impl Strategy<Value = Ubig> {
    proptest::collection::vec(any::<u64>(), 0..4).prop_map(Ubig::from_limbs)
}

/// Textbook square-and-multiply, the independent oracle.
fn naive_pow(base: &Ubig, exp: &Ubig, n: &Ubig) -> Ubig {
    let mut acc = Ubig::one() % n;
    let mut b = base % n;
    for i in 0..exp.bit_len() {
        if exp.bit(i) {
            acc = (&acc * &b) % n;
        }
        b = (&b * &b) % n;
    }
    acc
}

proptest! {
    /// Scratch-buffer `mont_mul` ≡ the old allocation path, over random
    /// reduced operands and moduli.
    #[test]
    fn scratch_mont_mul_matches_reference(a in ubig(), b in ubig(), m in odd_modulus()) {
        let ctx = MontCtx::new(&m).unwrap();
        let a = &a % &m;
        let b = &b % &m;
        let mut s = ctx.scratch();
        prop_assert_eq!(ctx.mont_mul(&a, &b, &mut s), ctx.mont_mul_reference(&a, &b));
    }

    /// `FixedBasePow::pow` ≡ `MontCtx::pow` ≡ naive square-and-multiply.
    #[test]
    fn three_pow_paths_agree(base in ubig(), exp in ubig(), m in odd_modulus()) {
        let ctx = MontCtx::new(&m).unwrap();
        let windowed = ctx.pow(&base, &exp);
        let naive = naive_pow(&base, &exp, &m);
        prop_assert_eq!(&windowed, &naive);
        let fb = FixedBasePow::new(&ctx, &base, 256).unwrap();
        prop_assert_eq!(&fb.pow(&exp), &naive);
    }

    /// Montgomery-form chaining (`to_mont` → `pow_mont` → `mont_mul` →
    /// `from_mont`) equals the round-tripping composition.
    #[test]
    fn mont_chain_matches_round_trips(a in ubig(), e in 0u64..5000, m in odd_modulus()) {
        let ctx = MontCtx::new(&m).unwrap();
        let a = &a % &m;
        let e = Ubig::from(e);
        let mut s = ctx.scratch();
        // chained: a^e * a, leaving Montgomery form only at the end
        let am = ctx.to_mont(&a, &mut s);
        let pm = ctx.pow_mont(&am, &e, &mut s);
        let chained = ctx.from_mont(&ctx.mont_mul(&pm, &am, &mut s), &mut s);
        let round_tripped = ctx.mul(&ctx.pow(&a, &e), &a);
        prop_assert_eq!(chained, round_tripped);
    }

    /// The multiplication count of `MontCtx::pow` is a pure function of
    /// `exp.bit_len()`: two exponents of equal bit length cost identical
    /// counts regardless of their bit patterns.
    #[test]
    fn pow_shape_depends_only_on_bit_len(
        bits in 1usize..200,
        seed1 in ubig(),
        seed2 in ubig(),
        m in odd_modulus(),
    ) {
        let ctx = MontCtx::new(&m).unwrap();
        let top = Ubig::one() << (bits - 1);
        let e1 = &top + &(&seed1 % &top);
        let e2 = &top + &(&seed2 % &top);
        prop_assert_eq!(e1.bit_len(), bits);
        prop_assert_eq!(e2.bit_len(), bits);
        let base = Ubig::from(7u64);
        reset_mont_mul_count();
        ctx.pow(&base, &e1);
        let c1 = mont_mul_count();
        reset_mont_mul_count();
        ctx.pow(&base, &e2);
        let c2 = mont_mul_count();
        prop_assert_eq!(c1, c2);
    }

    /// `FixedBasePow` is stricter: the count is one constant for every
    /// exponent the table accepts, whatever its bit length.
    #[test]
    fn fixed_base_shape_is_constant(
        exp in ubig(),
        m in odd_modulus(),
    ) {
        let ctx = MontCtx::new(&m).unwrap();
        let fb = FixedBasePow::new(&ctx, &Ubig::from(3u64), 256).unwrap();
        let mut s = fb.scratch();
        reset_mont_mul_count();
        fb.pow_mont(&exp, &mut s);
        prop_assert_eq!(mont_mul_count(), fb.muls_per_pow());
    }
}
