//! Property-based tests for the big-integer substrate.

use pisa_bigint::modular::{gcd, lcm, mod_inverse, mod_mul, mod_pow};
use pisa_bigint::{Ibig, Ubig};
use proptest::prelude::*;

/// Arbitrary Ubig up to ~256 bits.
fn ubig() -> impl Strategy<Value = Ubig> {
    proptest::collection::vec(any::<u64>(), 0..4).prop_map(Ubig::from_limbs)
}

/// Arbitrary non-zero Ubig.
fn ubig_nonzero() -> impl Strategy<Value = Ubig> {
    ubig().prop_filter("non-zero", |v| !v.is_zero())
}

proptest! {
    #[test]
    fn add_commutative(a in ubig(), b in ubig()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associative(a in ubig(), b in ubig(), c in ubig()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn add_sub_roundtrip(a in ubig(), b in ubig()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn mul_commutative(a in ubig(), b in ubig()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_distributes(a in ubig(), b in ubig(), c in ubig()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn div_rem_invariant(a in ubig(), b in ubig_nonzero()) {
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn shift_is_power_of_two_mul(a in ubig(), n in 0usize..200) {
        prop_assert_eq!(&a << n, &a * &(Ubig::one() << n));
    }

    #[test]
    fn decimal_roundtrip(a in ubig()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Ubig>().unwrap(), a);
    }

    #[test]
    fn bytes_roundtrip(a in ubig()) {
        prop_assert_eq!(Ubig::from_be_bytes(&a.to_be_bytes()), a);
    }

    #[test]
    fn gcd_divides_and_lcm_relation(a in ubig_nonzero(), b in ubig_nonzero()) {
        let g = gcd(&a, &b);
        prop_assert!((&a % &g).is_zero());
        prop_assert!((&b % &g).is_zero());
        // gcd * lcm == a * b
        prop_assert_eq!(&g * &lcm(&a, &b), &a * &b);
    }

    #[test]
    fn mod_pow_add_exponents(
        a in ubig(),
        e1 in 0u64..1000,
        e2 in 0u64..1000,
        m in ubig_nonzero(),
    ) {
        prop_assume!(!m.is_one());
        let lhs = mod_pow(&a, &Ubig::from(e1 + e2), &m);
        let rhs = mod_mul(
            &mod_pow(&a, &Ubig::from(e1), &m),
            &mod_pow(&a, &Ubig::from(e2), &m),
            &m,
        );
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn mod_inverse_roundtrip(a in ubig_nonzero(), m in ubig_nonzero()) {
        prop_assume!(!m.is_one());
        if let Some(inv) = mod_inverse(&a, &m) {
            prop_assert_eq!(mod_mul(&a, &inv, &m), Ubig::one() % &m);
        } else {
            prop_assert!(!gcd(&a, &m).is_one());
        }
    }

    #[test]
    fn ibig_add_sub_consistent(a in any::<i64>(), b in any::<i64>()) {
        let (ba, bb) = (Ibig::from(a), Ibig::from(b));
        let sum = &ba + &bb;
        prop_assert_eq!(&sum - &bb, ba);
    }

    #[test]
    fn ibig_ordering_matches_i64(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(Ibig::from(a).cmp(&Ibig::from(b)), a.cmp(&b));
    }

    #[test]
    fn rem_euclid_in_range(a in any::<i64>(), m in 1u64..10_000) {
        let r = Ibig::from(a).rem_euclid(&Ubig::from(m));
        prop_assert!(r < Ubig::from(m));
        // r ≡ a (mod m)
        let r64 = u64::try_from(&r).unwrap() as i128;
        prop_assert_eq!((a as i128 - r64).rem_euclid(m as i128), 0);
    }
}
