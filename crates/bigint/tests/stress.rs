//! Deterministic stress tests: cross-check the big-integer arithmetic
//! against `u128` on structured edge cases that random testing rarely
//! hits (carry boundaries, borrow chains, near-power-of-two values).

use pisa_bigint::modular::{gcd, mod_inverse, mod_mul, mod_pow};
use pisa_bigint::{Ibig, Ubig};

/// Values that sit on carry/borrow boundaries.
fn edge_values() -> Vec<u128> {
    let mut v = vec![0u128, 1, 2, 3];
    for shift in [7usize, 31, 32, 33, 63, 64, 65, 95, 127] {
        let p = 1u128 << shift;
        v.extend_from_slice(&[p - 1, p, p + 1]);
    }
    v.push(u128::MAX - 1);
    v.push(u128::MAX);
    v
}

#[test]
fn add_matches_u128() {
    for &a in &edge_values() {
        for &b in &edge_values() {
            if let Some(expected) = a.checked_add(b) {
                assert_eq!(
                    Ubig::from(a) + Ubig::from(b),
                    Ubig::from(expected),
                    "{a} + {b}"
                );
            }
        }
    }
}

#[test]
fn sub_matches_u128() {
    for &a in &edge_values() {
        for &b in &edge_values() {
            if a >= b {
                assert_eq!(
                    Ubig::from(a) - Ubig::from(b),
                    Ubig::from(a - b),
                    "{a} - {b}"
                );
            }
        }
    }
}

#[test]
fn mul_matches_u128() {
    for &a in &edge_values() {
        for &b in &edge_values() {
            if let Some(expected) = a.checked_mul(b) {
                assert_eq!(
                    Ubig::from(a) * Ubig::from(b),
                    Ubig::from(expected),
                    "{a} * {b}"
                );
            }
        }
    }
}

#[test]
fn div_rem_matches_u128() {
    for &a in &edge_values() {
        for &b in &edge_values() {
            if b != 0 {
                let (q, r) = Ubig::from(a).div_rem(&Ubig::from(b));
                assert_eq!(q, Ubig::from(a / b), "{a} / {b}");
                assert_eq!(r, Ubig::from(a % b), "{a} % {b}");
            }
        }
    }
}

#[test]
fn wide_products_reduce_consistently() {
    // (a*b) mod m computed wide equals ((a mod m)*(b mod m)) mod m.
    let m = Ubig::from(0xffff_fffb_u64); // prime below 2^32
    for &a in &edge_values() {
        for &b in &edge_values() {
            let wide = (Ubig::from(a) * Ubig::from(b)) % &m;
            let narrow = mod_mul(&(Ubig::from(a) % &m), &(Ubig::from(b) % &m), &m);
            assert_eq!(wide, narrow, "{a} * {b} mod p");
        }
    }
}

#[test]
fn fermat_across_limb_boundaries() {
    // a^(p-1) ≡ 1 (mod p) for primes chosen at 1-, 2- and 3-limb sizes.
    let primes = [
        Ubig::from(0xffff_ffff_ffff_ffc5u64), // 64-bit prime
        (Ubig::one() << 127) - Ubig::one(),   // Mersenne 127
        (Ubig::one() << 107) - Ubig::one(),   // Mersenne 107
    ];
    for p in &primes {
        let exp = p - &Ubig::one();
        for base in [2u64, 3, 0xdead_beef] {
            assert_eq!(
                mod_pow(&Ubig::from(base), &exp, p),
                Ubig::one(),
                "base {base}"
            );
        }
    }
}

#[test]
fn inverse_of_edge_values() {
    let p = (Ubig::one() << 127) - Ubig::one();
    for &a in &edge_values() {
        let a = Ubig::from(a) % &p;
        if a.is_zero() {
            // Multiples of p (including p itself, which is in the edge
            // set) have no inverse — and must say so.
            assert_eq!(mod_inverse(&a, &p), None);
            continue;
        }
        let inv = mod_inverse(&a, &p).expect("prime modulus");
        assert_eq!(mod_mul(&a, &inv, &p), Ubig::one());
    }
}

#[test]
fn gcd_of_shifted_pairs() {
    // gcd(k·2^i, k·3·2^j) == k·2^min(i,j) for odd k.
    let k = Ubig::from(0x1234_5677u64); // odd
    for i in [0usize, 1, 63, 64, 100] {
        for j in [0usize, 5, 64, 90] {
            let a = &k << i;
            let b = (&k * &Ubig::from(3u64)) << j;
            assert_eq!(gcd(&a, &b), &k << i.min(j), "i={i}, j={j}");
        }
    }
}

#[test]
fn signed_arithmetic_on_boundaries() {
    let cases: Vec<i64> = vec![i64::MIN + 1, -(1 << 32), -1, 0, 1, 1 << 32, i64::MAX];
    for &a in &cases {
        for &b in &cases {
            if let Some(sum) = a.checked_add(b) {
                assert_eq!(Ibig::from(a) + Ibig::from(b), Ibig::from(sum));
            }
            if let Some(diff) = a.checked_sub(b) {
                assert_eq!(Ibig::from(a) - Ibig::from(b), Ibig::from(diff));
            }
        }
    }
}

#[test]
fn decimal_and_hex_agree() {
    for &v in &edge_values() {
        let u = Ubig::from(v);
        let via_dec: Ubig = u.to_string().parse().unwrap();
        let via_hex = Ubig::from_hex(&format!("{u:x}")).unwrap();
        assert_eq!(via_dec, u);
        assert_eq!(via_hex, u);
    }
}

#[test]
fn karatsuba_boundary_shapes() {
    // Exercise the exact limb counts around the Karatsuba threshold (24
    // limbs) including highly asymmetric operands.
    let pattern = |n: usize, salt: u64| {
        Ubig::from_limbs(
            (0..n as u64)
                .map(|i| i.wrapping_mul(0x9e37_79b9).rotate_left(13) ^ salt)
                .collect(),
        )
    };
    for &(la, lb) in &[
        (23usize, 23usize),
        (24, 24),
        (25, 24),
        (48, 25),
        (50, 1),
        (1, 50),
    ] {
        let a = pattern(la, 7);
        let b = pattern(lb, 11);
        let ab = &a * &b;
        // Verify with the division identity instead of a second
        // multiplication path: (a*b) / a == b exactly.
        if !a.is_zero() {
            let (q, r) = ab.div_rem(&a);
            assert_eq!(q, b, "la={la}, lb={lb}");
            assert!(r.is_zero());
        }
    }
}
