//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! provides the exact API subset the workspace uses: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, a deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded via splitmix64), and the [`rng()`] entropy
//! constructor. Statistical quality is ample for simulation and
//! Miller–Rabin witnesses; it is NOT a cryptographically secure
//! generator and must be swapped for the real `rand`/`getrandom` stack
//! before any production deployment.

/// Core random-number generation interface.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing generator trait (alias surface of the real crate).
pub trait Rng: RngCore {}
impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// A fresh generator seeded from ambient entropy (hasher randomness +
/// monotonic clock). Use [`SeedableRng::seed_from_u64`] for
/// reproducibility.
pub fn rng() -> rngs::StdRng {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    let mut h = RandomState::new().build_hasher();
    h.write_u64(
        std::time::UNIX_EPOCH
            .elapsed()
            .map_or(0, |d| d.as_nanos() as u64),
    );
    <rngs::StdRng as SeedableRng>::seed_from_u64(h.finish())
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the shim's "standard" RNG).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn bits_look_balanced() {
        let mut r = StdRng::seed_from_u64(42);
        let ones: u32 = (0..1000).map(|_| r.next_u64().count_ones()).sum();
        // 64 000 bits, expect ~32 000 ones.
        assert!((30_000..34_000).contains(&ones), "{ones}");
    }
}
