//! A small Rust tokenizer.
//!
//! Produces a flat token stream with line numbers. Comments and doc
//! comments are discarded (tools that care about comments — e.g. inline
//! allow directives — scan the raw source text themselves). String,
//! char, raw-string and byte-string literals are lexed as single
//! [`TokenKind::Literal`] tokens so that delimiters inside them never
//! confuse downstream parsing.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `Ubig`, `r#type`).
    Ident,
    /// Any literal: numbers, strings, chars, byte strings.
    Literal,
    /// A lifetime such as `'a` (without the quote in `text`? no — kept).
    Lifetime,
    /// A single punctuation character (`.`, `;`, `<`, …).
    Punct,
    /// An opening delimiter: `(`, `[` or `{`.
    Open(char),
    /// A closing delimiter: `)`, `]` or `}`.
    Close(char),
}

/// One lexed token with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token class.
    pub kind: TokenKind,
    /// The verbatim token text.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Token {
    /// `true` if this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// `true` if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Tokenizes `src`, dropping comments. Never fails: unterminated
/// constructs are lexed to the end of input.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(line),
                '\'' => self.quote(line),
                'r' | 'b' if self.raw_or_byte_prefix() => self.prefixed_literal(line),
                _ if c == '_' || c.is_alphabetic() => self.ident(line),
                _ if c.is_ascii_digit() => self.number(line),
                '(' | '[' | '{' => {
                    self.bump();
                    self.push(TokenKind::Open(c), c.to_string(), line);
                }
                ')' | ']' | '}' => {
                    self.bump();
                    self.push(TokenKind::Close(c), c.to_string(), line);
                }
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
    }

    fn block_comment(&mut self) {
        // Consume "/*" then scan for the matching "*/", allowing nesting.
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    fn string_literal(&mut self, line: u32) {
        let mut text = String::new();
        text.push(self.bump().unwrap_or('"'));
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(self.bump().unwrap_or('\\'));
                if let Some(e) = self.bump() {
                    text.push(e);
                }
                continue;
            }
            text.push(c);
            self.bump();
            if c == '"' {
                break;
            }
        }
        self.push(TokenKind::Literal, text, line);
    }

    /// After a `'`: lifetime (`'a`, `'static`) or char literal (`'x'`,
    /// `'\n'`). A quote followed by an ident char that is *not* closed by
    /// another quote right after is a lifetime.
    fn quote(&mut self, line: u32) {
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime = matches!(next, Some(c) if c == '_' || c.is_alphabetic())
            && after != Some('\'')
            && next != Some('\\');
        if is_lifetime {
            let mut text = String::new();
            text.push(self.bump().unwrap_or('\''));
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, text, line);
        } else {
            let mut text = String::new();
            text.push(self.bump().unwrap_or('\''));
            while let Some(c) = self.peek(0) {
                if c == '\\' {
                    text.push(self.bump().unwrap_or('\\'));
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                    continue;
                }
                text.push(c);
                self.bump();
                if c == '\'' {
                    break;
                }
            }
            self.push(TokenKind::Literal, text, line);
        }
    }

    /// `true` when the current `r`/`b` starts a raw string, byte string
    /// or raw identifier rather than a plain identifier.
    fn raw_or_byte_prefix(&self) -> bool {
        matches!(
            (self.peek(0), self.peek(1), self.peek(2)),
            (Some('r'), Some('"'), _)
                | (Some('r'), Some('#'), _)
                | (Some('b'), Some('"'), _)
                | (Some('b'), Some('\''), _)
                | (Some('b'), Some('r'), Some('"'))
                | (Some('b'), Some('r'), Some('#'))
        )
    }

    fn prefixed_literal(&mut self, line: u32) {
        let mut text = String::new();
        // Consume prefix letters.
        while matches!(self.peek(0), Some('r') | Some('b')) {
            text.push(self.bump().unwrap_or('r'));
        }
        if self.peek(0) == Some('#') && !text.contains('r') {
            // `b#`? Not valid Rust; treat the consumed letters as ident.
            self.push(TokenKind::Ident, text, line);
            return;
        }
        if text.ends_with('r') || text.contains('r') {
            // Raw (byte) string or raw identifier: r"…", r#"…"#, r#ident.
            let mut hashes = 0usize;
            while self.peek(0) == Some('#') {
                text.push(self.bump().unwrap_or('#'));
                hashes += 1;
            }
            if self.peek(0) == Some('"') {
                text.push(self.bump().unwrap_or('"'));
                loop {
                    match self.peek(0) {
                        None => break,
                        Some('"') => {
                            text.push(self.bump().unwrap_or('"'));
                            let mut seen = 0usize;
                            while seen < hashes && self.peek(0) == Some('#') {
                                text.push(self.bump().unwrap_or('#'));
                                seen += 1;
                            }
                            if seen == hashes {
                                break;
                            }
                        }
                        Some(c) => {
                            text.push(c);
                            self.bump();
                        }
                    }
                }
                self.push(TokenKind::Literal, text, line);
            } else {
                // Raw identifier r#foo: emit the ident without prefix.
                let mut ident = String::new();
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        ident.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokenKind::Ident, ident, line);
            }
        } else if self.peek(0) == Some('"') {
            // Byte string b"…".
            text.push(self.bump().unwrap_or('"'));
            while let Some(c) = self.peek(0) {
                if c == '\\' {
                    text.push(self.bump().unwrap_or('\\'));
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                    continue;
                }
                text.push(c);
                self.bump();
                if c == '"' {
                    break;
                }
            }
            self.push(TokenKind::Literal, text, line);
        } else {
            // Byte char b'x'.
            text.push(self.bump().unwrap_or('\''));
            while let Some(c) = self.peek(0) {
                if c == '\\' {
                    text.push(self.bump().unwrap_or('\\'));
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                    continue;
                }
                text.push(c);
                self.bump();
                if c == '\'' {
                    break;
                }
            }
            self.push(TokenKind::Literal, text, line);
        }
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            let take = c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.'
                    && matches!(self.peek(1), Some(d) if d.is_ascii_digit())
                    && !text.contains('.'));
            if take {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Literal, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn basic_tokens() {
        let toks = kinds("fn f(x: u32) -> u32 { x + 1 }");
        assert!(toks.contains(&(TokenKind::Ident, "fn".into())));
        assert!(toks.contains(&(TokenKind::Open('{'), "{".into())));
        assert!(toks.contains(&(TokenKind::Literal, "1".into())));
    }

    #[test]
    fn comments_dropped() {
        let toks = kinds("a // unwrap()\n/* panic! /* nested */ */ b");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "a".into()),
                (TokenKind::Ident, "b".into())
            ]
        );
    }

    #[test]
    fn strings_opaque() {
        let toks = kinds(r#"let s = "unwrap() { ] }"; x"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t.contains("unwrap")));
        // No stray delimiters leaked from inside the string.
        assert!(!toks.iter().any(|(k, _)| matches!(k, TokenKind::Close(']'))));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = kinds(r###"let s = r#"has "quotes" and }"#; y"###);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t.contains("quotes")));
        assert!(toks.iter().any(|(_, t)| t == "y"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(toks.contains(&(TokenKind::Lifetime, "'a".into())));
        assert!(toks.contains(&(TokenKind::Literal, "'x'".into())));
        assert!(toks.contains(&(TokenKind::Literal, "'\\n'".into())));
    }

    #[test]
    fn byte_and_raw_idents() {
        let toks = kinds(r##"let a = b"bytes"; let b = r#type; let c = b'x';"##);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t.contains("bytes")));
        assert!(toks.contains(&(TokenKind::Ident, "type".into())));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t == "b'x'"));
    }

    #[test]
    fn line_numbers() {
        let toks = lex("a\nb\n  c");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn floats_and_ranges() {
        let toks = kinds("1.5 + 0..n + 2.0e3");
        assert!(toks.contains(&(TokenKind::Literal, "1.5".into())));
        assert!(toks.contains(&(TokenKind::Literal, "0".into())));
        assert!(toks.contains(&(TokenKind::Ident, "n".into())));
    }
}
