//! Offline in-repo stand-in for the `syn` crate.
//!
//! `pisa-lint` needs an *item-level* view of Rust source: structs and
//! their field types, derive attributes, impl blocks (which trait, for
//! which type), function signatures, and raw token streams for function
//! bodies. This shim provides exactly that subset, built on its own
//! tokenizer ([`lexer`]) — no proc-macro machinery, no full grammar.
//!
//! The parser is deliberately *resilient*: constructs it does not model
//! (macros, traits, consts, uses, …) are skipped as balanced token
//! groups rather than rejected, so any compiling workspace file parses.

#![forbid(unsafe_code)]

pub mod lexer;

pub use lexer::{lex, Token, TokenKind};

use std::fmt;

/// Parse failure (only produced for pathological inputs, e.g. an
/// unbalanced delimiter stream).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    /// 1-based line where the problem was detected.
    pub line: u32,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for Error {}

/// A parsed source file: inner attributes plus top-level items.
#[derive(Debug, Clone)]
pub struct File {
    /// Inner attributes (`#![…]`), e.g. `#![forbid(unsafe_code)]`.
    pub attrs: Vec<Attribute>,
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// An outer or inner attribute, stored as a path plus its raw argument
/// tokens: `#[derive(Debug, Clone)]` → path `derive`, tokens
/// `["Debug", ",", "Clone"]`.
#[derive(Debug, Clone)]
pub struct Attribute {
    /// The attribute path (`derive`, `doc`, `cfg`, `cfg_attr`, …).
    pub path: String,
    /// The raw token texts inside the attribute's delimiters (empty for
    /// bare attributes like `#[test]`).
    pub tokens: Vec<String>,
    /// 1-based source line.
    pub line: u32,
}

impl Attribute {
    /// For a `derive` attribute, the list of derived trait names (last
    /// path segment each); empty otherwise.
    pub fn derives(&self) -> Vec<String> {
        if self.path != "derive" {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut last: Option<&str> = None;
        for t in &self.tokens {
            match t.as_str() {
                "," => {
                    if let Some(name) = last.take() {
                        out.push(name.to_string());
                    }
                }
                ":" | "(" | ")" | "[" | "]" | "{" | "}" => {}
                s => last = Some(s),
            }
        }
        if let Some(name) = last {
            out.push(name.to_string());
        }
        out
    }

    /// `true` if any token inside the attribute contains `needle`
    /// (used for marker attributes like `#[doc(alias = "pisa_secret")]`).
    pub fn contains(&self, needle: &str) -> bool {
        self.path.contains(needle) || self.tokens.iter().any(|t| t.contains(needle))
    }
}

/// A named or tuple struct field.
#[derive(Debug, Clone)]
pub struct Field {
    /// Field name (`"0"`, `"1"`, … for tuple structs).
    pub name: String,
    /// The field's type, as flattened source text (e.g. `Vec<u64>`).
    pub ty: String,
    /// 1-based source line.
    pub line: u32,
}

/// A `struct` item with its attributes and fields.
#[derive(Debug, Clone)]
pub struct ItemStruct {
    pub attrs: Vec<Attribute>,
    pub ident: String,
    pub fields: Vec<Field>,
    pub line: u32,
}

/// An `enum` item. Variant payload types are flattened into `fields`
/// (the lint only needs "does this type transitively contain X").
#[derive(Debug, Clone)]
pub struct ItemEnum {
    pub attrs: Vec<Attribute>,
    pub ident: String,
    /// Variant payload types, flattened across all variants.
    pub fields: Vec<Field>,
    pub line: u32,
}

/// One function argument: name (or `self`) and flattened type text.
#[derive(Debug, Clone)]
pub struct FnArg {
    pub name: String,
    pub ty: String,
}

/// A function signature: name, inputs, whether it takes `self`, and the
/// flattened return-type text (empty for `()`-returning functions).
#[derive(Debug, Clone)]
pub struct Signature {
    pub ident: String,
    pub inputs: Vec<FnArg>,
    pub has_self: bool,
    /// Return type as flattened source text (`Result<Ubig, Error>`);
    /// empty when the function has no `->` clause.
    pub ret_ty: String,
}

/// A free or associated function, with its body kept as a raw balanced
/// token slice (no statement-level parse).
#[derive(Debug, Clone)]
pub struct ItemFn {
    pub attrs: Vec<Attribute>,
    pub sig: Signature,
    /// Body tokens, *excluding* the outer braces.
    pub body: Vec<Token>,
    pub line: u32,
}

/// An `impl` block: optional trait, self type (last path segment), and
/// the functions it contains.
#[derive(Debug, Clone)]
pub struct ItemImpl {
    pub attrs: Vec<Attribute>,
    /// Trait name for `impl Trait for Ty` (last path segment), else None.
    pub trait_: Option<String>,
    /// The `Self` type's base name (`Ubig` for `impl Ubig`, `Foo` for
    /// `impl<T> Foo<T>`).
    pub self_ty: String,
    pub fns: Vec<ItemFn>,
    pub line: u32,
}

/// An inline module `mod name { … }` (out-of-line `mod name;` produces
/// an empty item list).
#[derive(Debug, Clone)]
pub struct ItemMod {
    pub attrs: Vec<Attribute>,
    pub ident: String,
    pub items: Vec<Item>,
    pub line: u32,
}

/// A top-level item. Constructs the lint does not inspect are folded
/// into `Other`.
#[derive(Debug, Clone)]
pub enum Item {
    Struct(ItemStruct),
    Enum(ItemEnum),
    Impl(ItemImpl),
    Fn(ItemFn),
    Mod(ItemMod),
    /// Anything else (use, const, trait, macro invocation, …).
    Other,
}

/// Parses `src` into a [`File`]. Resilient: unknown constructs are
/// skipped, not rejected.
pub fn parse_file(src: &str) -> Result<File, Error> {
    let tokens = lex(src);
    let mut p = Parser { tokens, pos: 0 };
    let attrs = p.inner_attrs();
    let items = p.items_until_end()?;
    Ok(File { attrs, items })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self, ahead: usize) -> Option<&Token> {
        self.tokens.get(self.pos + ahead)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn line(&self) -> u32 {
        self.peek(0).map(|t| t.line).unwrap_or(0)
    }

    fn at_ident(&self, word: &str) -> bool {
        self.peek(0).map(|t| t.is_ident(word)).unwrap_or(false)
    }

    fn at_punct(&self, c: char) -> bool {
        self.peek(0).map(|t| t.is_punct(c)).unwrap_or(false)
    }

    fn at_open(&self, c: char) -> bool {
        matches!(self.peek(0), Some(t) if t.kind == TokenKind::Open(c))
    }

    fn at_close(&self, c: char) -> bool {
        matches!(self.peek(0), Some(t) if t.kind == TokenKind::Close(c))
    }

    /// Consumes `#![…]` inner attributes at the current position.
    fn inner_attrs(&mut self) -> Vec<Attribute> {
        let mut out = Vec::new();
        while self.at_punct('#')
            && self.peek(1).map(|t| t.is_punct('!')).unwrap_or(false)
            && matches!(self.peek(2), Some(t) if t.kind == TokenKind::Open('['))
        {
            let line = self.line();
            self.bump(); // #
            self.bump(); // !
            if let Some(a) = self.attr_body(line) {
                out.push(a);
            }
        }
        out
    }

    /// Consumes `#[…]` outer attributes at the current position.
    fn outer_attrs(&mut self) -> Vec<Attribute> {
        let mut out = Vec::new();
        while self.at_punct('#')
            && matches!(self.peek(1), Some(t) if t.kind == TokenKind::Open('['))
        {
            let line = self.line();
            self.bump(); // #
            if let Some(a) = self.attr_body(line) {
                out.push(a);
            }
        }
        out
    }

    /// Parses `[path(tokens…)]` / `[path = value]` / `[path]` after the
    /// leading `#` (and optional `!`) have been consumed.
    fn attr_body(&mut self, line: u32) -> Option<Attribute> {
        if !self.at_open('[') {
            return None;
        }
        let group = self.balanced_group('[');
        // group excludes the outer brackets. First ident(s) form the path.
        let mut path = String::new();
        let mut rest = Vec::new();
        let mut in_path = true;
        let mut i = 0usize;
        while i < group.len() {
            let t = &group[i];
            if in_path {
                match t.kind {
                    TokenKind::Ident => path.push_str(&t.text),
                    TokenKind::Punct if t.text == ":" => path.push(':'),
                    _ => {
                        in_path = false;
                        if !matches!(t.kind, TokenKind::Open(_) | TokenKind::Close(_)) {
                            rest.push(t.text.clone());
                        }
                    }
                }
            } else if !matches!(t.kind, TokenKind::Open(_) | TokenKind::Close(_)) {
                rest.push(t.text.clone());
            } else {
                // keep nested delimiter texts too, flattened
                rest.push(t.text.clone());
            }
            i += 1;
        }
        // Normalize `foo::bar` paths to last segment for matching, but
        // keep the full path if it has no `::`.
        let path = path.rsplit("::").next().unwrap_or(&path).to_string();
        Some(Attribute {
            path,
            tokens: rest,
            line,
        })
    }

    /// Consumes a balanced group opened by `open` (the opener must be the
    /// current token) and returns the tokens strictly inside it.
    fn balanced_group(&mut self, open: char) -> Vec<Token> {
        let close = match open {
            '(' => ')',
            '[' => ']',
            _ => '}',
        };
        let mut out = Vec::new();
        if !self.at_open(open) {
            return out;
        }
        self.bump();
        let mut depth = 1usize;
        while let Some(t) = self.bump() {
            match t.kind {
                TokenKind::Open(c) if c == open => {
                    depth += 1;
                    out.push(t);
                }
                TokenKind::Close(c) if c == close => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                    out.push(t);
                }
                _ => out.push(t),
            }
        }
        out
    }

    /// Skips any single balanced group or single token.
    fn skip_group_or_token(&mut self) {
        match self.peek(0).map(|t| t.kind) {
            Some(TokenKind::Open(c)) => {
                self.balanced_group(c);
            }
            _ => {
                self.bump();
            }
        }
    }

    fn items_until_end(&mut self) -> Result<Vec<Item>, Error> {
        let mut items = Vec::new();
        while self.peek(0).is_some() {
            if self.at_close('}') || self.at_close(')') || self.at_close(']') {
                // Stray closer at top level: tolerate and skip.
                self.bump();
                continue;
            }
            items.push(self.item()?);
        }
        Ok(items)
    }

    fn items_in_brace_group(&mut self, tokens: Vec<Token>) -> Result<Vec<Item>, Error> {
        let mut sub = Parser { tokens, pos: 0 };
        sub.items_until_end()
    }

    fn item(&mut self) -> Result<Item, Error> {
        let attrs = self.outer_attrs();
        // Skip visibility: `pub`, `pub(crate)`, `pub(in …)`.
        if self.at_ident("pub") {
            self.bump();
            if self.at_open('(') {
                self.balanced_group('(');
            }
        }
        // Skip qualifiers that may precede fn/struct keywords.
        while self.at_ident("const")
            || self.at_ident("async")
            || self.at_ident("unsafe")
            || self.at_ident("extern")
        {
            // `const` may start a const item rather than qualify `fn`;
            // disambiguate: `const fn` vs `const NAME`.
            if self.at_ident("const") && !matches!(self.peek(1), Some(t) if t.is_ident("fn")) {
                return Ok(self.skip_to_item_end());
            }
            self.bump();
            // `extern "C"` string
            if matches!(self.peek(0), Some(t) if t.kind == TokenKind::Literal) {
                self.bump();
            }
        }

        if self.at_ident("struct") {
            return self.item_struct(attrs).map(Item::Struct);
        }
        if self.at_ident("enum") {
            return self.item_enum(attrs).map(Item::Enum);
        }
        if self.at_ident("impl") {
            return self.item_impl(attrs).map(Item::Impl);
        }
        if self.at_ident("fn") {
            return self.item_fn(attrs).map(Item::Fn);
        }
        if self.at_ident("mod") {
            return self.item_mod(attrs).map(Item::Mod);
        }
        Ok(self.skip_to_item_end())
    }

    /// Skips an unmodelled item: consume tokens until a top-level `;` or
    /// a balanced `{…}` block ends the item.
    fn skip_to_item_end(&mut self) -> Item {
        while let Some(t) = self.peek(0) {
            match t.kind {
                TokenKind::Punct if t.text == ";" => {
                    self.bump();
                    break;
                }
                TokenKind::Open('{') => {
                    self.balanced_group('{');
                    break;
                }
                TokenKind::Open(c) => {
                    self.balanced_group(c);
                }
                TokenKind::Close(_) => break,
                _ => {
                    self.bump();
                }
            }
        }
        Item::Other
    }

    /// Skips a generics list `<…>` if present (angle-depth aware).
    fn skip_generics(&mut self) {
        if !self.at_punct('<') {
            return;
        }
        let mut depth = 0i32;
        while let Some(t) = self.peek(0) {
            if t.is_punct('<') {
                depth += 1;
                self.bump();
            } else if t.is_punct('>') {
                depth -= 1;
                self.bump();
                if depth <= 0 {
                    break;
                }
            } else if t.is_punct('-') && matches!(self.peek(1), Some(n) if n.is_punct('>')) {
                // `->` inside generics (fn pointer types): consume both
                // without touching depth.
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
    }

    /// Collects flattened type text until a top-level `,` or the end of
    /// the token slice, starting at `i`. Returns (text, next index).
    fn flatten_type(tokens: &[Token], mut i: usize) -> (String, usize) {
        let mut depth = 0i32;
        let mut text = String::new();
        while i < tokens.len() {
            let t = &tokens[i];
            match t.kind {
                TokenKind::Punct if t.text == "," && depth == 0 => break,
                TokenKind::Punct if t.text == "<" => {
                    depth += 1;
                    text.push('<');
                }
                TokenKind::Punct if t.text == ">" => {
                    depth -= 1;
                    text.push('>');
                }
                TokenKind::Punct if t.text == "-" => {
                    // `->` in fn-pointer types: pass through.
                    text.push('-');
                }
                TokenKind::Open(c) => {
                    depth += 1;
                    text.push(c);
                }
                TokenKind::Close(c) => {
                    depth -= 1;
                    text.push(c);
                }
                _ => {
                    if !text.is_empty()
                        && text
                            .chars()
                            .last()
                            .map(|c| c.is_alphanumeric() || c == '_')
                            .unwrap_or(false)
                        && t.kind == TokenKind::Ident
                    {
                        text.push(' ');
                    }
                    text.push_str(&t.text);
                }
            }
            i += 1;
        }
        (text, i)
    }

    fn item_struct(&mut self, attrs: Vec<Attribute>) -> Result<ItemStruct, Error> {
        let line = self.line();
        self.bump(); // struct
        let ident = match self.bump() {
            Some(t) if t.kind == TokenKind::Ident => t.text,
            other => {
                return Err(Error {
                    msg: format!("expected struct name, got {other:?}"),
                    line,
                })
            }
        };
        self.skip_generics();
        // where-clause before the body.
        if self.at_ident("where") {
            while let Some(t) = self.peek(0) {
                if t.kind == TokenKind::Open('{') || t.is_punct(';') {
                    break;
                }
                if let TokenKind::Open(c) = t.kind {
                    self.balanced_group(c);
                } else {
                    self.bump();
                }
            }
        }
        let mut fields = Vec::new();
        if self.at_open('{') {
            let body = self.balanced_group('{');
            fields = Self::named_fields(&body);
        } else if self.at_open('(') {
            let body = self.balanced_group('(');
            fields = Self::tuple_fields(&body);
            if self.at_punct(';') {
                self.bump();
            }
        } else if self.at_punct(';') {
            self.bump(); // unit struct
        }
        Ok(ItemStruct {
            attrs,
            ident,
            fields,
            line,
        })
    }

    /// Parses `name: Type, …` fields from a brace-group token slice,
    /// skipping per-field attributes and visibility.
    fn named_fields(tokens: &[Token]) -> Vec<Field> {
        let mut fields = Vec::new();
        let mut i = 0usize;
        while i < tokens.len() {
            // Skip field attributes `#[…]`.
            while i < tokens.len() && tokens[i].is_punct('#') {
                i += 1;
                if i < tokens.len() && tokens[i].kind == TokenKind::Open('[') {
                    i = Self::skip_balanced_at(tokens, i);
                }
            }
            // Skip visibility.
            if i < tokens.len() && tokens[i].is_ident("pub") {
                i += 1;
                if i < tokens.len() && tokens[i].kind == TokenKind::Open('(') {
                    i = Self::skip_balanced_at(tokens, i);
                }
            }
            if i >= tokens.len() {
                break;
            }
            let (name, line) = (tokens[i].text.clone(), tokens[i].line);
            if tokens[i].kind != TokenKind::Ident {
                i += 1;
                continue;
            }
            i += 1;
            if i < tokens.len() && tokens[i].is_punct(':') {
                i += 1;
                let (ty, next) = Self::flatten_type(tokens, i);
                fields.push(Field { name, ty, line });
                i = next;
            }
            // Skip the separating comma.
            if i < tokens.len() && tokens[i].is_punct(',') {
                i += 1;
            }
        }
        fields
    }

    /// Parses `Type, Type, …` from a paren-group token slice (tuple
    /// struct / enum tuple variant).
    fn tuple_fields(tokens: &[Token]) -> Vec<Field> {
        let mut fields = Vec::new();
        let mut i = 0usize;
        let mut idx = 0usize;
        while i < tokens.len() {
            // Skip attributes and visibility.
            while i < tokens.len() && tokens[i].is_punct('#') {
                i += 1;
                if i < tokens.len() && tokens[i].kind == TokenKind::Open('[') {
                    i = Self::skip_balanced_at(tokens, i);
                }
            }
            if i < tokens.len() && tokens[i].is_ident("pub") {
                i += 1;
                if i < tokens.len() && tokens[i].kind == TokenKind::Open('(') {
                    i = Self::skip_balanced_at(tokens, i);
                }
            }
            if i >= tokens.len() {
                break;
            }
            let line = tokens[i].line;
            let (ty, next) = Self::flatten_type(tokens, i);
            if !ty.is_empty() {
                fields.push(Field {
                    name: idx.to_string(),
                    ty,
                    line,
                });
                idx += 1;
            }
            i = next;
            if i < tokens.len() && tokens[i].is_punct(',') {
                i += 1;
            }
        }
        fields
    }

    /// Given `tokens[i]` an opening delimiter, returns the index just
    /// past its matching closer.
    fn skip_balanced_at(tokens: &[Token], i: usize) -> usize {
        let open = match tokens[i].kind {
            TokenKind::Open(c) => c,
            _ => return i + 1,
        };
        let close = match open {
            '(' => ')',
            '[' => ']',
            _ => '}',
        };
        let mut depth = 0usize;
        let mut j = i;
        while j < tokens.len() {
            match tokens[j].kind {
                TokenKind::Open(c) if c == open => depth += 1,
                TokenKind::Close(c) if c == close => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        tokens.len()
    }

    fn item_enum(&mut self, attrs: Vec<Attribute>) -> Result<ItemEnum, Error> {
        let line = self.line();
        self.bump(); // enum
        let ident = match self.bump() {
            Some(t) if t.kind == TokenKind::Ident => t.text,
            other => {
                return Err(Error {
                    msg: format!("expected enum name, got {other:?}"),
                    line,
                })
            }
        };
        self.skip_generics();
        let mut fields = Vec::new();
        if self.at_open('{') {
            let body = self.balanced_group('{');
            // Walk variants: Name, Name(Types), Name { fields }.
            let mut i = 0usize;
            while i < body.len() {
                while i < body.len() && body[i].is_punct('#') {
                    i += 1;
                    if i < body.len() && body[i].kind == TokenKind::Open('[') {
                        i = Self::skip_balanced_at(&body, i);
                    }
                }
                if i >= body.len() {
                    break;
                }
                if body[i].kind != TokenKind::Ident {
                    i += 1;
                    continue;
                }
                i += 1; // variant name
                if i < body.len() {
                    match body[i].kind {
                        TokenKind::Open('(') => {
                            let end = Self::skip_balanced_at(&body, i);
                            fields.extend(Self::tuple_fields(&body[i + 1..end - 1]));
                            i = end;
                        }
                        TokenKind::Open('{') => {
                            let end = Self::skip_balanced_at(&body, i);
                            fields.extend(Self::named_fields(&body[i + 1..end - 1]));
                            i = end;
                        }
                        _ => {}
                    }
                }
                // Skip discriminant `= expr` and trailing comma.
                while i < body.len() && !body[i].is_punct(',') {
                    if let TokenKind::Open(c) = body[i].kind {
                        let _ = c;
                        i = Self::skip_balanced_at(&body, i);
                    } else {
                        i += 1;
                    }
                }
                if i < body.len() {
                    i += 1; // comma
                }
            }
        } else if self.at_punct(';') {
            self.bump();
        }
        Ok(ItemEnum {
            attrs,
            ident,
            fields,
            line,
        })
    }

    fn item_impl(&mut self, attrs: Vec<Attribute>) -> Result<ItemImpl, Error> {
        let line = self.line();
        self.bump(); // impl
        self.skip_generics();
        // Read the first type path (may turn out to be the trait).
        let first = self.type_path();
        let (trait_, self_ty) = if self.at_ident("for") {
            self.bump();
            let ty = self.type_path();
            (Some(first), ty)
        } else {
            (None, first)
        };
        // where-clause.
        while self.peek(0).is_some() && !self.at_open('{') {
            if let Some(TokenKind::Open(c)) = self.peek(0).map(|t| t.kind) {
                if c == '{' {
                    break;
                }
                self.balanced_group(c);
            } else {
                self.bump();
            }
        }
        let body = self.balanced_group('{');
        let mut sub = Parser {
            tokens: body,
            pos: 0,
        };
        let mut fns = Vec::new();
        while sub.peek(0).is_some() {
            if let Item::Fn(f) = sub.item()? {
                fns.push(f);
            }
        }
        Ok(ItemImpl {
            attrs,
            trait_,
            self_ty,
            fns,
            line,
        })
    }

    /// Reads a type path at the current position and returns its base
    /// name (last path segment before any generics): `foo::Bar<T>` →
    /// `Bar`, `&mut Baz` → `Baz`.
    fn type_path(&mut self) -> String {
        let mut last = String::new();
        loop {
            match self.peek(0) {
                Some(t) if t.kind == TokenKind::Ident => {
                    let word = t.text.clone();
                    // Stop at keywords that end a type position.
                    if word == "for" || word == "where" {
                        break;
                    }
                    last = word;
                    self.bump();
                    // `::` continues the path.
                    if self.at_punct(':') && matches!(self.peek(1), Some(n) if n.is_punct(':')) {
                        self.bump();
                        self.bump();
                        continue;
                    }
                    // Generics after the name: skip them, path is done.
                    if self.at_punct('<') {
                        self.skip_generics();
                    }
                    break;
                }
                Some(t)
                    if t.is_punct('&')
                        || t.is_punct('*')
                        || t.is_ident("mut")
                        || t.is_punct('\'') =>
                {
                    self.bump();
                }
                Some(t) if t.kind == TokenKind::Lifetime => {
                    self.bump();
                }
                Some(t) if t.kind == TokenKind::Open('(') => {
                    // Tuple type: flatten to "(tuple)".
                    self.balanced_group('(');
                    last = "(tuple)".to_string();
                    break;
                }
                _ => break,
            }
        }
        last
    }

    fn item_fn(&mut self, attrs: Vec<Attribute>) -> Result<ItemFn, Error> {
        let line = self.line();
        self.bump(); // fn
        let ident = match self.bump() {
            Some(t) if t.kind == TokenKind::Ident => t.text,
            other => {
                return Err(Error {
                    msg: format!("expected fn name, got {other:?}"),
                    line,
                })
            }
        };
        self.skip_generics();
        let params = if self.at_open('(') {
            self.balanced_group('(')
        } else {
            Vec::new()
        };
        let (inputs, has_self) = Self::fn_inputs(&params);
        // Return type: flatten `-> …` up to the body, `;`, or `where`.
        let mut ret_ty = String::new();
        if self.at_punct('-') && matches!(self.peek(1), Some(t) if t.is_punct('>')) {
            self.bump();
            self.bump();
            let mut depth = 0i32;
            while let Some(t) = self.peek(0) {
                if depth == 0 && (t.kind == TokenKind::Open('{') || t.is_punct(';')) {
                    break;
                }
                if depth == 0 && t.is_ident("where") {
                    break;
                }
                match t.kind {
                    TokenKind::Open(c) => {
                        depth += 1;
                        ret_ty.push(c);
                    }
                    TokenKind::Close(c) => {
                        depth -= 1;
                        ret_ty.push(c);
                    }
                    _ => {
                        if t.kind == TokenKind::Ident
                            && ret_ty
                                .chars()
                                .last()
                                .map(|c| c.is_alphanumeric() || c == '_')
                                .unwrap_or(false)
                        {
                            ret_ty.push(' ');
                        }
                        ret_ty.push_str(&t.text);
                    }
                }
                self.bump();
            }
        }
        // Where clause / anything left before the body: skip.
        while let Some(t) = self.peek(0) {
            if t.kind == TokenKind::Open('{') || t.is_punct(';') {
                break;
            }
            if t.is_punct('<') {
                self.skip_generics();
            } else if let TokenKind::Open(c) = t.kind {
                self.balanced_group(c);
            } else {
                self.bump();
            }
        }
        let body = if self.at_open('{') {
            self.balanced_group('{')
        } else {
            if self.at_punct(';') {
                self.bump();
            }
            Vec::new()
        };
        Ok(ItemFn {
            attrs,
            sig: Signature {
                ident,
                inputs,
                has_self,
                ret_ty,
            },
            body,
            line,
        })
    }

    /// Splits a fn parameter token slice into (args, has_self).
    fn fn_inputs(tokens: &[Token]) -> (Vec<FnArg>, bool) {
        let mut args = Vec::new();
        let mut has_self = false;
        let mut i = 0usize;
        while i < tokens.len() {
            // Skip attributes on params.
            while i < tokens.len() && tokens[i].is_punct('#') {
                i += 1;
                if i < tokens.len() && tokens[i].kind == TokenKind::Open('[') {
                    i = Self::skip_balanced_at(tokens, i);
                }
            }
            // Skip `&`, `'a`, `mut` prefixes.
            while i < tokens.len()
                && (tokens[i].is_punct('&')
                    || tokens[i].kind == TokenKind::Lifetime
                    || tokens[i].is_ident("mut"))
            {
                i += 1;
            }
            if i >= tokens.len() {
                break;
            }
            if tokens[i].is_ident("self") {
                has_self = true;
                args.push(FnArg {
                    name: "self".to_string(),
                    ty: "Self".to_string(),
                });
                i += 1;
                // Optional `: Type` (rare explicit self type).
                if i < tokens.len() && tokens[i].is_punct(':') {
                    let (_, next) = Self::flatten_type(tokens, i + 1);
                    i = next;
                }
            } else if tokens[i].kind == TokenKind::Ident || tokens[i].is_ident("_") {
                let name = tokens[i].text.clone();
                i += 1;
                if i < tokens.len() && tokens[i].is_punct(':') {
                    i += 1;
                    let (ty, next) = Self::flatten_type(tokens, i);
                    args.push(FnArg { name, ty });
                    i = next;
                } else {
                    // Pattern arg we don't model; skip to comma.
                    while i < tokens.len() && !tokens[i].is_punct(',') {
                        if matches!(tokens[i].kind, TokenKind::Open(_)) {
                            i = Self::skip_balanced_at(tokens, i);
                        } else {
                            i += 1;
                        }
                    }
                }
            } else {
                // Pattern like `(a, b): (u32, u32)` — skip group then type.
                if matches!(tokens[i].kind, TokenKind::Open(_)) {
                    i = Self::skip_balanced_at(tokens, i);
                } else {
                    i += 1;
                }
                if i < tokens.len() && tokens[i].is_punct(':') {
                    let (_, next) = Self::flatten_type(tokens, i + 1);
                    i = next;
                }
            }
            if i < tokens.len() && tokens[i].is_punct(',') {
                i += 1;
            }
        }
        (args, has_self)
    }

    fn item_mod(&mut self, attrs: Vec<Attribute>) -> Result<ItemMod, Error> {
        let line = self.line();
        self.bump(); // mod
        let ident = match self.bump() {
            Some(t) if t.kind == TokenKind::Ident => t.text,
            other => {
                return Err(Error {
                    msg: format!("expected mod name, got {other:?}"),
                    line,
                })
            }
        };
        let items = if self.at_open('{') {
            let body = self.balanced_group('{');
            self.items_in_brace_group(body)?
        } else {
            if self.at_punct(';') {
                self.bump();
            }
            Vec::new()
        };
        Ok(ItemMod {
            attrs,
            ident,
            items,
            line,
        })
    }
}

// Silence "method never used" on helper kept for API completeness.
#[allow(dead_code)]
fn _assert_api(p: &mut Parser) {
    p.skip_group_or_token();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_struct_with_derives_and_fields() {
        let src = r#"
            /// Docs.
            #[derive(Debug, Clone, PartialEq)]
            pub struct Key {
                pub n: Ubig,
                lambda: Ubig,
                crt: Option<CrtParams>,
            }
        "#;
        let f = parse_file(src).unwrap();
        let s = match &f.items[0] {
            Item::Struct(s) => s,
            other => panic!("expected struct, got {other:?}"),
        };
        assert_eq!(s.ident, "Key");
        let derives: Vec<String> = s.attrs.iter().flat_map(|a| a.derives()).collect();
        assert_eq!(derives, vec!["Debug", "Clone", "PartialEq"]);
        assert_eq!(s.fields.len(), 3);
        assert_eq!(s.fields[0].name, "n");
        assert_eq!(s.fields[2].ty, "Option<CrtParams>");
    }

    #[test]
    fn parses_tuple_struct_and_unit_struct() {
        let f = parse_file("pub struct Sig(pub Ubig); struct Marker;").unwrap();
        let s0 = match &f.items[0] {
            Item::Struct(s) => s,
            _ => panic!(),
        };
        assert_eq!(s0.ident, "Sig");
        assert_eq!(s0.fields[0].ty, "Ubig");
        let s1 = match &f.items[1] {
            Item::Struct(s) => s,
            _ => panic!(),
        };
        assert!(s1.fields.is_empty());
    }

    #[test]
    fn parses_enum_variant_payloads() {
        let src = "enum E { A, B(Ubig, u32), C { key: SecretKey }, D = 3 }";
        let f = parse_file(src).unwrap();
        let e = match &f.items[0] {
            Item::Enum(e) => e,
            _ => panic!(),
        };
        assert_eq!(e.ident, "E");
        let tys: Vec<&str> = e.fields.iter().map(|f| f.ty.as_str()).collect();
        assert_eq!(tys, vec!["Ubig", "u32", "SecretKey"]);
    }

    #[test]
    fn parses_impl_trait_for_type() {
        let src = r#"
            impl fmt::Debug for SecretKey {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                    write!(f, "<redacted>")
                }
            }
            impl SecretKey {
                pub fn decrypt(&self, ct: &Ciphertext) -> Ibig { todo!() }
            }
        "#;
        let f = parse_file(src).unwrap();
        let i0 = match &f.items[0] {
            Item::Impl(i) => i,
            _ => panic!(),
        };
        assert_eq!(i0.trait_.as_deref(), Some("Debug"));
        assert_eq!(i0.self_ty, "SecretKey");
        assert_eq!(i0.fns[0].sig.ident, "fmt");
        assert!(i0.fns[0].sig.has_self);
        let i1 = match &f.items[1] {
            Item::Impl(i) => i,
            _ => panic!(),
        };
        assert!(i1.trait_.is_none());
        assert_eq!(i1.fns[0].sig.inputs[1].name, "ct");
        assert_eq!(i1.fns[0].sig.inputs[1].ty, "&Ciphertext");
    }

    #[test]
    fn parses_generic_impl() {
        let src = "impl<T: Clone> Wrapper<T> { fn get(&self) -> &T { &self.0 } }";
        let f = parse_file(src).unwrap();
        let i = match &f.items[0] {
            Item::Impl(i) => i,
            _ => panic!(),
        };
        assert_eq!(i.self_ty, "Wrapper");
    }

    #[test]
    fn parses_fn_body_tokens_and_inner_attrs() {
        let src = "#![forbid(unsafe_code)]\nfn main() { let x = v.unwrap(); }";
        let f = parse_file(src).unwrap();
        assert_eq!(f.attrs[0].path, "forbid");
        assert!(f.attrs[0].tokens.iter().any(|t| t == "unsafe_code"));
        let func = match &f.items[0] {
            Item::Fn(func) => func,
            _ => panic!(),
        };
        assert!(func.body.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn parses_nested_mods_and_cfg_test() {
        let src = r#"
            mod outer {
                #[cfg(test)]
                mod tests {
                    #[test]
                    fn t() { assert!(true); }
                }
            }
        "#;
        let f = parse_file(src).unwrap();
        let outer = match &f.items[0] {
            Item::Mod(m) => m,
            _ => panic!(),
        };
        let inner = match &outer.items[0] {
            Item::Mod(m) => m,
            _ => panic!(),
        };
        assert_eq!(inner.ident, "tests");
        assert!(inner
            .attrs
            .iter()
            .any(|a| a.path == "cfg" && a.contains("test")));
    }

    #[test]
    fn skips_unmodelled_items() {
        let src = r#"
            use std::fmt;
            const N: usize = 4;
            pub trait T { fn f(&self); }
            macro_rules! m { () => {}; }
            struct After;
        "#;
        let f = parse_file(src).unwrap();
        assert!(f
            .items
            .iter()
            .any(|i| matches!(i, Item::Struct(s) if s.ident == "After")));
    }

    #[test]
    fn marker_attribute_detected() {
        let src = r#"
            #[doc(alias = "pisa_secret")]
            pub struct BlindingFactors { alpha: Ubig }
        "#;
        let f = parse_file(src).unwrap();
        let s = match &f.items[0] {
            Item::Struct(s) => s,
            _ => panic!(),
        };
        assert!(s.attrs.iter().any(|a| a.contains("pisa_secret")));
    }

    #[test]
    fn fn_signature_reference_types_flatten() {
        let src = "fn pow(&self, base: &Ubig, exp: &Ubig) -> Ubig { loop {} }";
        let f = parse_file(src).unwrap();
        let func = match &f.items[0] {
            Item::Fn(func) => func,
            _ => panic!(),
        };
        assert_eq!(func.sig.inputs[2].name, "exp");
        assert!(func.sig.inputs[2].ty.contains("Ubig"));
    }

    #[test]
    fn fn_return_type_captured() {
        let f = parse_file("fn state() -> &'static Mutex<State> { loop {} }").unwrap();
        let func = match &f.items[0] {
            Item::Fn(func) => func,
            _ => panic!(),
        };
        assert!(
            func.sig.ret_ty.contains("Mutex<State>"),
            "{}",
            func.sig.ret_ty
        );

        let f = parse_file("fn nothing(x: u32) { }").unwrap();
        let func = match &f.items[0] {
            Item::Fn(func) => func,
            _ => panic!(),
        };
        assert!(func.sig.ret_ty.is_empty());

        let f = parse_file("fn pair() -> (u32, Result<Ubig, Error>) where Ubig: Clone { loop {} }")
            .unwrap();
        let func = match &f.items[0] {
            Item::Fn(func) => func,
            _ => panic!(),
        };
        assert!(
            func.sig.ret_ty.contains("Result<Ubig,Error>") || func.sig.ret_ty.contains("Result")
        );
        assert!(!func.sig.ret_ty.contains("where"));
    }
}
