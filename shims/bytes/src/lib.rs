//! Offline stand-in for the `bytes` crate: cheaply cloneable immutable
//! [`Bytes`], growable [`BytesMut`], and the [`Buf`]/[`BufMut`] traits —
//! exactly the subset the PISA wire codec uses. Big-endian accessors
//! match the real crate's semantics.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data.into(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write access to a byte sink (big-endian integer encodings).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read access to a byte source that advances past consumed bytes.
///
/// # Panics
///
/// Like the real crate, the `get_*` accessors panic when fewer bytes
/// remain than requested — callers bounds-check via [`Buf::remaining`].
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);
    /// Reads the next byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        self.advance(1);
        v
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(0xab);
        w.put_u32(0xdead_beef);
        w.put_u64(42);
        w.put_slice(b"xy");
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 0xab);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r, b"xy");
    }

    #[test]
    fn bytes_equality_and_clone() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(&a[1..], &[2, 3]);
    }
}
