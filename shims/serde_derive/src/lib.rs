//! No-op `Serialize`/`Deserialize` derives for the offline serde shim.
//!
//! The workspace derives serde traits on many config/message types for
//! forward compatibility, but nothing in the dependency tree ever
//! drives a serializer through those derived impls (the wire format is
//! the hand-written codec in `pisa-net`/`pisa-core`). These derives
//! therefore expand to nothing: the attribute compiles, no impl is
//! emitted. Hand-written impls (e.g. `pisa-bigint`'s) still work
//! against the shim's real trait definitions.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
