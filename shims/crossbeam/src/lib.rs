//! Offline stand-in for `crossbeam`: an unbounded MPMC channel with the
//! same surface the PISA transport uses (`send`, `recv`, `try_recv`,
//! `recv_timeout`, cloneable senders *and* receivers, disconnect
//! detection by live-handle counts).

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (messages go to exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Send failed: every receiver is gone. Carries the unsent message.
    pub struct SendError<T>(pub T);

    impl<T> SendError<T> {
        /// Recovers the message that could not be sent.
        pub fn into_inner(self) -> T {
            self.0
        }
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Receive failed: channel is empty and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Non-blocking receive outcome when no message was returned.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Empty and every sender is gone.
        Disconnected,
    }

    /// Bounded-wait receive outcome when no message was returned.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the deadline.
        Timeout,
        /// Empty and every sender is gone.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Enqueues a message, failing if all receivers are dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut state = self.shared.queue.lock().unwrap();
                state.senders -= 1;
                state.senders
            };
            if remaining == 0 {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Pops a queued message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            match state.items.pop_front() {
                Some(item) => Ok(item),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .ready
                    .wait_timeout(state, deadline - now)
                    .unwrap();
                state = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn timeout_then_delivery() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7u8).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(7));
    }

    #[test]
    fn disconnect_detection() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx2, rx2) = unbounded();
        drop(rx2);
        assert_eq!(tx2.send(1u8).unwrap_err().into_inner(), 1);
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || tx.send(42u8).unwrap());
        assert_eq!(rx.recv().unwrap(), 42);
        handle.join().unwrap();
    }
}
