//! Offline stand-in for `criterion`: the macro/builder surface the
//! bench targets use, backed by a minimal timing loop (fixed iteration
//! count, mean wall-clock per iteration printed to stderr) instead of
//! criterion's statistical machinery. Good enough to keep `cargo bench`
//! compiling and producing ballpark numbers without network deps.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup cost. The shim always runs one
/// setup per routine call, which matches `PerIteration` semantics.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Fresh setup for every routine call.
    PerIteration,
    /// Small batches (treated as `PerIteration` here).
    SmallInput,
    /// Large batches (treated as `PerIteration` here).
    LargeInput,
}

/// A `function_name/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Labels a benchmark as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// A named collection of benchmarks sharing sample settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Times `f` and prints the mean per-iteration cost.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let mean = bencher.elapsed.as_secs_f64() / bencher.iters.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!(" ({:.0} elem/s)", n as f64 / mean)
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!(" ({:.0} B/s)", n as f64 / mean)
            }
            _ => String::new(),
        };
        eprintln!(
            "bench {}/{}: {:>12.3} ms/iter over {} iters{}",
            self.name,
            id.id,
            mean * 1e3,
            bencher.iters,
            rate,
        );
        self
    }

    /// Ends the group (reporting is per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with untimed per-iteration `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut timed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            timed += start.elapsed();
        }
        self.elapsed = timed;
    }
}

/// Defines a benchmark-group function, `criterion_group! { name = ...;
/// config = ...; targets = ... }` or `criterion_group!(name, targets...)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Defines `main` running the named benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_function("iter", |b| b.iter(|| 2 + 2));
        group.bench_function(BenchmarkId::new("batched", 64), |b| {
            b.iter_batched(|| vec![0u8; 64], |v| v.len(), BatchSize::PerIteration)
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default();
        targets = sample_bench
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
