//! Offline stand-in for `serde`: the trait surface used by the
//! workspace's hand-written impls (`pisa-bigint`'s byte encodings),
//! with no-op derive macros re-exported behind the `derive` feature.
//!
//! The data model is a deliberately small subset — bytes, bools,
//! unsigned integers, sequences and 2-tuples — which is everything the
//! in-tree impls touch. No serializer backend ships in the workspace;
//! the real wire format is the hand-written codec in `pisa-net`.

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A value serializable through [`Serializer`].
pub trait Serialize {
    /// Feeds `self` into the serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A value reconstructible through a [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Drives the deserializer to rebuild `Self`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Re-export so `serde::Deserializer` paths resolve.
pub use de::Deserializer;
/// Re-export so `serde::Serializer` paths resolve.
pub use ser::Serializer;

/// Serialization half of the data model.
pub mod ser {
    use std::fmt;

    /// Serializer-side error constructor.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from any message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    /// The subset data-model sink.
    pub trait Serializer: Sized {
        /// Success value.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Tuple sub-serializer.
        type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;

        /// Writes a bool.
        fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
        /// Writes a byte.
        fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
        /// Writes a u32.
        fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
        /// Writes a u64.
        fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
        /// Writes an opaque byte string.
        fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
        /// Begins a fixed-arity tuple.
        fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    }

    /// Element sink for tuples.
    pub trait SerializeTuple {
        /// Success value.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Writes one element.
        fn serialize_element<T: super::Serialize + ?Sized>(
            &mut self,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finishes the tuple.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }
}

/// Deserialization half of the data model.
pub mod de {
    use std::fmt;

    /// Deserializer-side error constructor.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from any message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    /// What a [`Visitor`] expects, for diagnostics.
    pub struct Expected;

    /// The subset data-model source.
    pub trait Deserializer<'de>: Sized {
        /// Error type.
        type Error: Error;

        /// Requests a bool.
        fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        /// Requests a byte.
        fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        /// Requests a u64.
        fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        /// Requests an opaque byte string.
        fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        /// Requests a fixed-arity tuple.
        fn deserialize_tuple<V: Visitor<'de>>(
            self,
            len: usize,
            visitor: V,
        ) -> Result<V::Value, Self::Error>;
    }

    /// Receives values from a [`Deserializer`].
    pub trait Visitor<'de>: Sized {
        /// The produced value.
        type Value;

        /// Describes the expected input (used in error messages).
        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result;

        /// Receives a bool.
        fn visit_bool<E: Error>(self, _v: bool) -> Result<Self::Value, E> {
            Err(E::custom("unexpected bool"))
        }
        /// Receives a u8.
        fn visit_u8<E: Error>(self, _v: u8) -> Result<Self::Value, E> {
            Err(E::custom("unexpected u8"))
        }
        /// Receives a u64.
        fn visit_u64<E: Error>(self, _v: u64) -> Result<Self::Value, E> {
            Err(E::custom("unexpected u64"))
        }
        /// Receives a byte string.
        fn visit_bytes<E: Error>(self, _v: &[u8]) -> Result<Self::Value, E> {
            Err(E::custom("unexpected bytes"))
        }
        /// Receives a sequence.
        fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
            Err(A::Error::custom("unexpected sequence"))
        }
    }

    /// Streaming access to sequence elements.
    pub trait SeqAccess<'de> {
        /// Error type.
        type Error: Error;
        /// Next element, or `None` at the end.
        fn next_element<T: super::Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error>;
    }
}

macro_rules! impl_primitive {
    ($($ty:ty => $ser:ident / $de:ident / $visit:ident),* $(,)?) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$ser(*self)
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> de::Visitor<'de> for V {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str(stringify!($ty))
                    }
                    fn $visit<E: de::Error>(self, v: $ty) -> Result<$ty, E> {
                        Ok(v)
                    }
                }
                deserializer.$de(V)
            }
        }
    )*};
}

impl_primitive! {
    bool => serialize_bool / deserialize_bool / visit_bool,
    u8 => serialize_u8 / deserialize_u8 / visit_u8,
    u64 => serialize_u64 / deserialize_u64 / visit_u64,
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeTuple as _;
        let mut t = serializer.serialize_tuple(2)?;
        t.serialize_element(&self.0)?;
        t.serialize_element(&self.1)?;
        t.end()
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<A, B>(std::marker::PhantomData<(A, B)>);
        impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> de::Visitor<'de> for V<A, B> {
            type Value = (A, B);
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a 2-tuple")
            }
            fn visit_seq<S: de::SeqAccess<'de>>(self, mut seq: S) -> Result<(A, B), S::Error> {
                use de::Error as _;
                let a = seq
                    .next_element()?
                    .ok_or_else(|| S::Error::custom("missing tuple element 0"))?;
                let b = seq
                    .next_element()?
                    .ok_or_else(|| S::Error::custom("missing tuple element 1"))?;
                Ok((a, b))
            }
        }
        deserializer.deserialize_tuple(2, V(std::marker::PhantomData))
    }
}
