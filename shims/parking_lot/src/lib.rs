//! Offline stand-in for `parking_lot`, backed by `std::sync` locks.
//!
//! Matches the parking_lot API shape the workspace uses: `lock()` /
//! `read()` / `write()` return guards directly (no `Result`); a
//! poisoned std lock is recovered transparently, mirroring
//! parking_lot's no-poisoning semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
    }
}
