//! Offline stand-in for `proptest`: a deterministic mini
//! property-testing runner exposing the subset of the real crate this
//! workspace uses — range/tuple/collection/option strategies,
//! `prop_map`/`prop_filter`, `any::<T>()`, `ProptestConfig::with_cases`,
//! and the `proptest!`/`prop_assert*`/`prop_assume!` macros.
//!
//! Differences from real proptest, on purpose:
//! - no shrinking — a failing case reports its case number and message;
//! - a fixed RNG seed, so every run explores the same cases (this also
//!   makes the chaos/property suites reproducible in CI);
//! - binders in `proptest!` are plain identifiers, which is all the
//!   in-tree tests use.

/// Runner configuration and failure plumbing.
pub mod test_runner {
    use rand::{RngCore, SeedableRng};

    /// How a generated case opted out of counting as a pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
        /// A `prop_assert*` failed; the test aborts.
        Fail(String),
    }

    /// Runner options; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases each property must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The deterministic source of randomness handed to strategies.
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// Fixed-seed RNG: every `cargo test` run explores the same cases.
        pub fn deterministic() -> Self {
            TestRng {
                inner: rand::rngs::StdRng::seed_from_u64(0x5eed_cafe_f00d_0001),
            }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Rejects values failing `keep`, retrying (bounded) until one
        /// passes. `whence` names the filter in exhaustion panics.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: impl Into<String>,
            keep: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                source: self,
                whence: whence.into(),
                keep,
            }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        source: S,
        whence: String,
        keep: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let candidate = self.source.generate(rng);
                if (self.keep)(&candidate) {
                    return candidate;
                }
            }
            panic!("prop_filter '{}' rejected 10000 candidates", self.whence);
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + (self.end - self.start) * frac
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
    );
}

/// `any::<T>()` — full-domain strategies for primitives.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// Strategy over the whole domain of `T`.
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    macro_rules! arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `None` about a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies: `fn name(binder in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($binder:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $binder = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(why)) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(64).max(4096),
                            "property '{}': too many rejected cases ({rejected}): {why}",
                            stringify!($name),
                        );
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property '{}' failed at case {accepted}: {msg}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `left == right`\n  left: `{left:?}`\n right: `{right:?}`",
            )));
        }
    }};
}

/// Fails the current property case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `left != right`\n  both: `{left:?}`",
            )));
        }
    }};
}

/// Discards the current case (retried, not failed) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..200 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (1.5f64..2.5).generate(&mut rng);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn deterministic_between_runs() {
        let draw = || {
            let mut rng = crate::test_runner::TestRng::deterministic();
            (0..32)
                .map(|_| any::<u64>().generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        fn macro_binders_work(a in 0u64..100, b in any::<u8>()) {
            prop_assert!(a < 100);
            let _ = b;
        }

        fn assume_rejects_cases(v in 0u32..10) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
            prop_assert_ne!(v % 2, 1);
        }

        fn vec_and_option_compose(
            items in crate::collection::vec((0u8..4, crate::option::of(1u8..3)), 0..8),
        ) {
            prop_assert!(items.len() < 8);
            for (a, b) in items {
                prop_assert!(a < 4);
                if let Some(b) = b {
                    prop_assert!(b == 1 || b == 2);
                }
            }
        }
    }
}
